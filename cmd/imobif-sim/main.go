// Command imobif-sim runs a single wireless ad hoc network scenario under
// a chosen mobility strategy and control mode, printing the energy and
// lifetime outcome. It is the quick way to poke at the framework without
// writing code.
//
// Usage:
//
//	imobif-sim -nodes 100 -flow-kb 1024 -strategy min-energy -mode informed
//	imobif-sim -mode cost-unaware -k 1.0 -alpha 3 -seed 7
//	imobif-sim -scenario examples/scenarios/chain.json
package main

import (
	"flag"
	"fmt"
	"os"

	imobif "repro"
	"repro/internal/scenario"
)

func main() {
	var (
		nodes    = flag.Int("nodes", 100, "number of nodes")
		field    = flag.Float64("field", 1000, "square field side, meters")
		rng      = flag.Float64("range", 200, "radio range, meters")
		k        = flag.Float64("k", 0.5, "mobility cost, J/m")
		alpha    = flag.Float64("alpha", 2, "path-loss exponent")
		flowKB   = flag.Float64("flow-kb", 1024, "flow length, KB")
		strategy = flag.String("strategy", "min-energy", "mobility strategy: min-energy, max-lifetime, max-lifetime-exact")
		mode     = flag.String("mode", "informed", "control mode: no-mobility, cost-unaware, informed")
		seed     = flag.Int64("seed", 1, "random seed")
		compare  = flag.Bool("compare", false, "also run the no-mobility baseline and print the energy ratio")
		deaths   = flag.Bool("stop-on-death", false, "stop at the first node death (lifetime runs)")
		energyLo = flag.Float64("energy-lo", 5000, "min initial node energy, J")
		energyHi = flag.Float64("energy-hi", 10000, "max initial node energy, J")
		scenFile = flag.String("scenario", "", "run a JSON scenario file instead of the flag-driven setup")
	)
	flag.Parse()

	var err error
	if *scenFile != "" {
		err = runScenario(*scenFile)
	} else {
		err = run(*nodes, *field, *rng, *k, *alpha, *flowKB, *strategy, *mode, *seed, *compare, *deaths, *energyLo, *energyHi)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "imobif-sim: %v\n", err)
		os.Exit(1)
	}
}

// runScenario loads and executes a declarative JSON scenario.
func runScenario(path string) error {
	s, err := scenario.LoadFile(path)
	if err != nil {
		return err
	}
	w, _, err := s.Build()
	if err != nil {
		return err
	}
	res, err := w.Run()
	if err != nil {
		return err
	}
	fmt.Printf("scenario: %s (%s, %s)\n", s.Name, s.Strategy, s.Mode)
	for i, f := range res.Flows {
		fmt.Printf("flow %d: completed=%v delivered %.0f KB in %.1f s, %d status change(s)\n",
			i, f.Completed, f.DeliveredBits/8/1024, float64(f.Duration), f.StatusFlips)
	}
	fmt.Printf("energy: %s\n", res.Energy)
	if res.FirstDeath >= 0 {
		fmt.Printf("first node death at %.1f s\n", float64(res.FirstDeath))
	}
	return nil
}

func run(nodes int, field, rng, k, alpha, flowKB float64, strategy, mode string, seed int64, compare, deaths bool, energyLo, energyHi float64) error {
	cfg := imobif.DefaultConfig()
	cfg.Nodes = nodes
	cfg.FieldWidth, cfg.FieldHeight = field, field
	cfg.Range = rng
	cfg.MobilityCost = k
	cfg.PathLossExp = alpha
	cfg.Strategy = imobif.Strategy(strategy)
	cfg.Mode = imobif.Mode(mode)
	cfg.StopOnFirstDeath = deaths
	if err := cfg.Validate(); err != nil {
		return err
	}

	net, err := buildNetwork(cfg, seed, energyLo, energyHi)
	if err != nil {
		return err
	}
	src, dst, err := net.PickFlowEndpoints(seed)
	if err != nil {
		return err
	}
	route, err := net.PlanGreedyRoute(src, dst)
	if err != nil {
		return err
	}
	fmt.Printf("network: %d nodes on %.0fx%.0f m, range %.0f m\n", nodes, field, field, rng)
	fmt.Printf("flow: %d -> %d (%.0f KB over %d hops), strategy %s, mode %s\n",
		src, dst, flowKB, len(route)-1, strategy, mode)

	res, err := runOnce(cfg, net, src, dst, flowKB)
	if err != nil {
		return err
	}
	report(res)

	if compare {
		base := cfg
		base.Mode = imobif.ModeNoMobility
		baseRes, err := runOnce(base, net, src, dst, flowKB)
		if err != nil {
			return err
		}
		if t := baseRes.TotalJoules(); t > 0 {
			fmt.Printf("energy consumption ratio vs no-mobility: %.3f\n", res.TotalJoules()/t)
		}
		if deaths && baseRes.Flows[0].LifetimeSeconds > 0 {
			fmt.Printf("system lifetime ratio vs no-mobility: %.3f\n",
				res.Flows[0].LifetimeSeconds/baseRes.Flows[0].LifetimeSeconds)
		}
	}
	return nil
}

func buildNetwork(cfg imobif.Config, seed int64, lo, hi float64) (*imobif.Network, error) {
	net, err := imobif.NewRandomNetwork(cfg, seed)
	if err != nil {
		return nil, err
	}
	if lo == 5000 && hi == 10000 {
		return net, nil // default energies already match
	}
	// Re-scale energies into [lo, hi].
	nodes := net.Nodes()
	for i := range nodes {
		frac := (nodes[i].Joules - 5000) / 5000
		nodes[i].Joules = lo + frac*(hi-lo)
	}
	return imobif.NewNetwork(nodes, cfg.Range)
}

func runOnce(cfg imobif.Config, net *imobif.Network, src, dst int, flowKB float64) (*imobif.Result, error) {
	sim, err := imobif.NewSimulation(cfg, net)
	if err != nil {
		return nil, err
	}
	if _, err := sim.AddFlow(src, dst, flowKB*1024); err != nil {
		return nil, err
	}
	return sim.Run()
}

func report(res *imobif.Result) {
	f := res.Flows[0]
	fmt.Printf("completed: %v  delivered: %.0f KB  duration: %.1f s\n",
		f.Completed, f.DeliveredBytes/1024, f.DurationSeconds)
	fmt.Printf("energy: tx %.2f J + movement %.2f J + control %.2f J = %.2f J\n",
		res.TxJoules, res.MoveJoules, res.ControlJoules, res.TotalJoules())
	fmt.Printf("notifications: %d  status flips: %d\n", f.Notifications, f.StatusFlips)
	if res.FirstDeathSeconds >= 0 {
		fmt.Printf("first node death at %.1f s\n", res.FirstDeathSeconds)
	}
}
