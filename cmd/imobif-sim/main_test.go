package main

import (
	"bytes"
	"io"
	"regexp"
	"strings"
	"testing"

	imobif "repro"
)

// baseOpts mirrors the CLI flag defaults for a small fast run.
func baseOpts() runOpts {
	return runOpts{
		nodes: 40, field: 800, rng: 200, k: 0.5, alpha: 2, flowKB: 100,
		strategy: "min-energy", mode: "informed", index: "grid", seed: 3,
		energyLo: 5000, energyHi: 10000,
	}
}

func TestRunBasicScenario(t *testing.T) {
	o := baseOpts()
	o.compare = true
	if err := run(io.Discard, o); err != nil {
		t.Fatal(err)
	}
}

func TestRunLifetimeScenario(t *testing.T) {
	o := baseOpts()
	o.flowKB = 10240
	o.strategy = "max-lifetime"
	o.mode = "cost-unaware"
	o.index = "brute"
	o.compare, o.deaths = true, true
	o.energyLo, o.energyHi = 100, 200
	if err := run(io.Discard, o); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadStrategy(t *testing.T) {
	o := baseOpts()
	o.strategy = "teleport"
	if err := run(io.Discard, o); err == nil {
		t.Error("bad strategy should error")
	}
}

func TestRunRejectsBadMode(t *testing.T) {
	o := baseOpts()
	o.mode = "yolo"
	if err := run(io.Discard, o); err == nil {
		t.Error("bad mode should error")
	}
}

func TestRunRejectsBadFaults(t *testing.T) {
	o := baseOpts()
	o.faults = faultOpts{loss: 1.5}
	if err := run(io.Discard, o); err == nil {
		t.Error("loss probability 1.5 should error")
	}
	o.faults = faultOpts{retry: 3, retryTimeout: 0}
	if err := run(io.Discard, o); err == nil {
		t.Error("retry without a timeout should error")
	}
}

// TestRunLossySummaryFormat pins the fault-mode summary layout: a faults
// echo line plus channel, transport, and delivery counter lines. Scripts
// parse these, so the shape is load-bearing.
func TestRunLossySummaryFormat(t *testing.T) {
	var buf bytes.Buffer
	o := baseOpts()
	o.faults = faultOpts{loss: 0.1, retry: 5, retryTimeout: 0.2, seed: 7}
	if err := run(&buf, o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, re := range []string{
		`(?m)^faults: loss 0\.10, burst 0\.0, 0 crash\(es\), retry 5 @ 0\.20 s, repair false, seed 7$`,
		`(?m)^channel: \d+ unicast / \d+ broadcast, \d+ delivered, drops: \d+ range, \d+ dead, \d+ fault$`,
		`(?m)^transport: \d+ retransmit\(s\), \d+ ack\(s\), \d+ dup-ack\(s\), \d+ dup-data, \d+ link-break\(s\), \d+ repair\(s\)$`,
		`(?m)^delivery: \d+/\d+ packets \(ratio [01]\.\d{3}\), channel loss rate 0\.\d{3}$`,
	} {
		if !regexp.MustCompile(re).MatchString(out) {
			t.Errorf("summary missing line matching %s\noutput:\n%s", re, out)
		}
	}
	// At p=0.1 with retries the channel must actually have dropped
	// something, so the counters are live rather than decorative.
	if regexp.MustCompile(`(?m)^channel: .* 0 fault$`).MatchString(out) {
		t.Errorf("fault drop counter stayed zero at loss 0.1:\n%s", out)
	}
}

// TestRunIdealSummaryOmitsFaultLines pins the flip side: without fault
// flags the summary stays byte-compatible with the pre-fault CLI.
func TestRunIdealSummaryOmitsFaultLines(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, baseOpts()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, banned := range []string{"faults:", "channel:", "transport:", "delivery:"} {
		if strings.Contains(out, banned) {
			t.Errorf("ideal-channel summary contains %q:\n%s", banned, out)
		}
	}
}

func TestRunWithCrashes(t *testing.T) {
	var buf bytes.Buffer
	o := baseOpts()
	o.flowKB = 2048
	o.faults = faultOpts{crash: 2, retry: 3, retryTimeout: 0.25, repair: true, seed: 11}
	if err := run(&buf, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2 crash(es)") {
		t.Errorf("crash count not echoed:\n%s", buf.String())
	}
}

func TestScheduleCrashesRejectsTooMany(t *testing.T) {
	cfg := imobif.DefaultConfig()
	cfg.Nodes = 3
	cfg.FieldWidth, cfg.FieldHeight = 100, 100
	net, err := imobif.NewRandomNetwork(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := imobif.NewSimulation(cfg, net)
	if err != nil {
		t.Fatal(err)
	}
	err = scheduleCrashes(sim, 3, 0, 1, faultOpts{crash: 2, seed: 1})
	if err == nil {
		t.Error("crashing 2 of 3 nodes with 2 exempt endpoints should error")
	}
}

func TestRunBatchWithFaults(t *testing.T) {
	var buf bytes.Buffer
	o := batchOpts{runOpts: baseOpts(), trials: 4, concurrency: 2}
	o.faults = faultOpts{loss: 0.1, retry: 5, retryTimeout: 0.2, seed: 5}
	if err := runBatch(&buf, o); err != nil {
		t.Fatal(err)
	}
	m := regexp.MustCompile(`(?m)^mean delivery ratio: ([01]\.\d{3})$`).FindStringSubmatch(buf.String())
	if m == nil {
		t.Fatalf("no mean delivery ratio line:\n%s", buf.String())
	}
	if m[1] < "0.990" {
		t.Errorf("mean delivery ratio %s at p=0.1 with retries, want >= 0.990", m[1])
	}
}

func TestRunBatchIdealOmitsDeliveryLine(t *testing.T) {
	var buf bytes.Buffer
	o := batchOpts{runOpts: baseOpts(), trials: 2, concurrency: 1}
	if err := runBatch(&buf, o); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "mean delivery ratio") {
		t.Errorf("ideal-channel batch printed a delivery line:\n%s", buf.String())
	}
}

func TestBuildNetworkRescalesEnergy(t *testing.T) {
	cfg := imobif.DefaultConfig()
	cfg.Nodes = 10
	net, err := buildNetwork(cfg, 1, 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range net.Nodes() {
		if n.Joules < 100 || n.Joules > 200 {
			t.Errorf("node %d energy %v outside [100, 200]", n.ID, n.Joules)
		}
	}
}

func TestRunScenarioFile(t *testing.T) {
	if err := runScenario(io.Discard, "../../examples/scenarios/chain.json"); err != nil {
		t.Fatal(err)
	}
}

func TestRunScenarioMissingFile(t *testing.T) {
	if err := runScenario(io.Discard, "/no/such/file.json"); err == nil {
		t.Error("missing scenario should error")
	}
}
