package main

import (
	"testing"

	imobif "repro"
)

func TestRunBasicScenario(t *testing.T) {
	err := run(40, 800, 200, 0.5, 2, 100, "min-energy", "informed", "grid", 3, true, false, 5000, 10000)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunLifetimeScenario(t *testing.T) {
	err := run(40, 800, 200, 0.5, 2, 10240, "max-lifetime", "cost-unaware", "brute", 3, true, true, 100, 200)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadStrategy(t *testing.T) {
	if err := run(40, 800, 200, 0.5, 2, 100, "teleport", "informed", "grid", 1, false, false, 5000, 10000); err == nil {
		t.Error("bad strategy should error")
	}
}

func TestRunRejectsBadMode(t *testing.T) {
	if err := run(40, 800, 200, 0.5, 2, 100, "min-energy", "yolo", "grid", 1, false, false, 5000, 10000); err == nil {
		t.Error("bad mode should error")
	}
}

func TestBuildNetworkRescalesEnergy(t *testing.T) {
	cfg := imobif.DefaultConfig()
	cfg.Nodes = 10
	net, err := buildNetwork(cfg, 1, 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range net.Nodes() {
		if n.Joules < 100 || n.Joules > 200 {
			t.Errorf("node %d energy %v outside [100, 200]", n.ID, n.Joules)
		}
	}
}

func TestRunScenarioFile(t *testing.T) {
	if err := runScenario("../../examples/scenarios/chain.json"); err != nil {
		t.Fatal(err)
	}
}

func TestRunScenarioMissingFile(t *testing.T) {
	if err := runScenario("/no/such/file.json"); err == nil {
		t.Error("missing scenario should error")
	}
}
