// Command doclint enforces the repository's godoc discipline: every
// exported identifier in every non-test package must carry a doc comment.
// It is the documentation gate wired into `make ci` — the build fails on
// any exported const, var, type, func, or method (on an exported type)
// whose declaration has no comment.
//
// Grouped declarations follow godoc's own convention: a comment on the
// const/var block documents the whole group, so individually uncommented
// members of a commented block pass. Test files and testdata are skipped.
//
// Usage:
//
//	doclint [packages ...]
//
// With no arguments it lints ./... from the current directory. The exit
// status is non-zero when any identifier is flagged.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: doclint [dir ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}
	var complaints []string
	for _, root := range roots {
		found, err := lintTree(root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(2)
		}
		complaints = append(complaints, found...)
	}
	sort.Strings(complaints)
	for _, c := range complaints {
		fmt.Println(c)
	}
	if len(complaints) > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d exported identifier(s) missing doc comments\n", len(complaints))
		os.Exit(1)
	}
}

// lintTree walks a directory tree and lints every Go package in it.
func lintTree(root string) ([]string, error) {
	var complaints []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if name == "testdata" || (strings.HasPrefix(name, ".") && path != root) {
			return filepath.SkipDir
		}
		found, err := lintDir(path)
		if err != nil {
			return err
		}
		complaints = append(complaints, found...)
		return nil
	})
	return complaints, err
}

// lintDir parses one directory's non-test Go files and reports exported
// identifiers without doc comments.
func lintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var complaints []string
	flag := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		complaints = append(complaints, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				lintDecl(decl, flag)
			}
		}
	}
	return complaints, nil
}

// lintDecl flags the undocumented exported identifiers of one top-level
// declaration.
func lintDecl(decl ast.Decl, flag func(pos token.Pos, kind, name string)) {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if d.Doc != nil || !d.Name.IsExported() {
			return
		}
		if d.Recv != nil {
			recv, exported := receiverName(d.Recv)
			if !exported {
				return // method on an unexported type: not API surface
			}
			flag(d.Pos(), "method", recv+"."+d.Name.Name)
			return
		}
		flag(d.Pos(), "function", d.Name.Name)
	case *ast.GenDecl:
		kind := map[token.Token]string{token.CONST: "const", token.VAR: "var", token.TYPE: "type"}[d.Tok]
		if kind == "" {
			return // imports
		}
		// A doc comment on a const/var block covers every member (the
		// godoc grouping convention); types are documented individually.
		blockDocumented := d.Doc != nil && d.Tok != token.TYPE
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
					flag(s.Pos(), kind, s.Name.Name)
				}
			case *ast.ValueSpec:
				if blockDocumented || s.Doc != nil || s.Comment != nil {
					continue
				}
				for _, name := range s.Names {
					if name.IsExported() {
						flag(s.Pos(), kind, name.Name)
					}
				}
			}
		}
	}
}

// receiverName extracts the receiver's base type name and whether it is
// exported.
func receiverName(recv *ast.FieldList) (string, bool) {
	if len(recv.List) == 0 {
		return "?", true
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return x.Name, x.IsExported()
		default:
			return "?", true
		}
	}
}
