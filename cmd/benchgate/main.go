// Command benchgate gates benchmark regressions: it parses `go test
// -bench` output (a file or stdin), compares it against a committed
// baseline, and exits nonzero when any gated metric is worse than the
// baseline by more than the threshold.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchgate -baseline bench_baseline.txt
//	benchgate -baseline bench_baseline.txt -input bench_output.txt -threshold 0.25
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/benchgate"
)

func main() {
	baseline := flag.String("baseline", "", "committed baseline benchmark output (required)")
	input := flag.String("input", "-", "current benchmark output; '-' reads stdin")
	threshold := flag.Float64("threshold", 0.10, "tolerated fractional slowdown (0.10 = 10%)")
	flag.Parse()

	if err := run(*baseline, *input, *threshold); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(baselinePath, inputPath string, threshold float64) error {
	if baselinePath == "" {
		return fmt.Errorf("-baseline is required")
	}
	bf, err := os.Open(baselinePath)
	if err != nil {
		return err
	}
	defer bf.Close()
	base, err := benchgate.Parse(bf)
	if err != nil {
		return fmt.Errorf("baseline %s: %w", baselinePath, err)
	}

	var in io.Reader = os.Stdin
	if inputPath != "-" {
		cf, err := os.Open(inputPath)
		if err != nil {
			return err
		}
		defer cf.Close()
		in = cf
	}
	cur, err := benchgate.Parse(in)
	if err != nil {
		return fmt.Errorf("current run: %w", err)
	}

	rep, err := benchgate.Compare(base, cur, threshold)
	if err != nil {
		return err
	}
	fmt.Print(rep.String())
	if rep.Failed() {
		return fmt.Errorf("benchmark regression past %.0f%% threshold", threshold*100)
	}
	return nil
}
