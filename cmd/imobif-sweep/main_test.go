package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

// fmtPinDoc is a small fast sweep document for the format pins.
const fmtPinDoc = `{
  "name": "fmt-pin",
  "seed": 11,
  "packet_bytes": 1024,
  "rate_bytes_per_sec": 2048,
  "nodes": [
    {"x": 0, "y": 0, "joules": 5000},
    {"x": 150, "y": 0, "joules": 5000},
    {"x": 300, "y": 0, "joules": 5000}
  ],
  "flows": [{"src": 0, "dst": 2, "length_kb": 16, "path": [0, 1, 2]}],
  "faults": {"loss_p": 0.08, "seed": 3, "retry_limit": 4, "retry_timeout_s": 0.5}
}`

// writeDoc drops fmtPinDoc into a temp dir and returns its path.
func writeDoc(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "doc.json")
	if err := os.WriteFile(path, []byte(fmtPinDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// mustMatch asserts out contains a line matching each pattern.
func mustMatch(t *testing.T, out string, patterns ...string) {
	t.Helper()
	for _, re := range patterns {
		if !regexp.MustCompile(re).MatchString(out) {
			t.Errorf("output missing line matching %s\noutput:\n%s", re, out)
		}
	}
}

// TestRunSummaryFormat pins the CLI's line format end to end: banner,
// worker list, per-trial progress, done/completed summary, checkpoint
// and result echoes, and the -verify verdict. Scripts parse these lines,
// so the shape is load-bearing.
func TestRunSummaryFormat(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	o := sweepOpts{
		scenario:   writeDoc(t),
		trials:     4,
		workers:    "local:2",
		checkpoint: filepath.Join(dir, "ckpt.jsonl"),
		out:        filepath.Join(dir, "out.json"),
		progress:   true,
		verify:     true,
	}
	if err := run(&buf, o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	mustMatch(t, out,
		`(?m)^sweep: scenario "fmt-pin" fingerprint [0-9a-f]{12} trials 4$`,
		`(?m)^workers: 2 slot\(s\): local:0, local:1$`,
		`(?m)^progress: 1/4$`,
		`(?m)^progress: 4/4$`,
		`(?m)^done: 4 trial\(s\) \(0 resumed, 4 run\) on 2 worker\(s\) in [0-9a-zµ.]+ \([0-9.]+ trials/s\)$`,
		`(?m)^completed: [0-4]/4 run\(s\), mean energy [0-9]+\.[0-9]{2} J$`,
		`(?m)^checkpoint: \S+ckpt\.jsonl \(4 record\(s\)\)$`,
		`(?m)^result: wrote \S+out\.json \([0-9]+ bytes\)$`,
		`(?m)^verify: merged result is byte-identical to the serial reference$`,
	)
	if raw, err := os.ReadFile(o.out); err != nil || len(raw) == 0 {
		t.Fatalf("result file: %v (%d bytes)", err, len(raw))
	}
}

// TestRunResumeFormat pins the resume banner and the resumed accounting
// in the done line: a completed checkpoint resumes with nothing to run
// and identical output bytes.
func TestRunResumeFormat(t *testing.T) {
	dir := t.TempDir()
	o := sweepOpts{
		scenario:   writeDoc(t),
		trials:     4,
		workers:    "local:2",
		checkpoint: filepath.Join(dir, "ckpt.jsonl"),
		out:        filepath.Join(dir, "first.json"),
	}
	if err := run(io.Discard, o); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	o.resume = true
	o.out = filepath.Join(dir, "second.json")
	if err := run(&buf, o); err != nil {
		t.Fatal(err)
	}
	mustMatch(t, buf.String(),
		`(?m)^resume: 4 trial\(s\) from checkpoint, 0 to run$`,
		`(?m)^done: 4 trial\(s\) \(4 resumed, 0 run\) on 2 worker\(s\) in [0-9a-zµ.]+ \(0\.0 trials/s\)$`,
	)
	first, err := os.ReadFile(filepath.Join(dir, "first.json"))
	if err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(o.out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("resumed result differs from the original:\n%s\n%s", first, second)
	}
}

func TestRunRejectsMissingScenario(t *testing.T) {
	if err := run(io.Discard, sweepOpts{}); err == nil {
		t.Error("missing -scenario should error")
	}
}

func TestRunRejectsBadWorkers(t *testing.T) {
	o := sweepOpts{scenario: writeDoc(t), workers: "carrier-pigeon"}
	if err := run(io.Discard, o); err == nil {
		t.Error("bad -workers should error")
	}
}

func TestRunRejectsBadTrialsOverride(t *testing.T) {
	o := sweepOpts{scenario: writeDoc(t), trials: 1 << 30, workers: "local:1"}
	if err := run(io.Discard, o); err == nil {
		t.Error("out-of-range -trials should error")
	}
}

func TestRunRefusesStaleCheckpointWithoutResume(t *testing.T) {
	dir := t.TempDir()
	o := sweepOpts{
		scenario:   writeDoc(t),
		trials:     2,
		workers:    "local:1",
		checkpoint: filepath.Join(dir, "ckpt.jsonl"),
	}
	if err := run(io.Discard, o); err != nil {
		t.Fatal(err)
	}
	if err := run(io.Discard, o); err == nil {
		t.Error("rerun without -resume should refuse to clobber the checkpoint")
	}
}
