// Command imobif-sweep runs a multi-trial scenario document on the
// distributed sweep fabric (internal/dsweep): a coordinator stripes
// trials over workers — in-process pool slots and/or remote
// imobif-served instances — checkpoints every completed trial to an
// append-only fsync'd JSONL file, and merges per-trial results into
// aggregates that are byte-identical to a serial run of the same
// document. A killed or crashed sweep resumes with -resume, re-running
// only the trials missing from the checkpoint.
//
// Usage:
//
//	imobif-sweep -scenario doc.json [-trials N] \
//	    [-workers local:4 | -workers http://host:8080,http://host2:8080,local:2] \
//	    [-checkpoint sweep.ckpt] [-resume] [-out result.json] [-progress] [-verify]
//
// -verify reruns the document serially after the fabric run and asserts
// the two merged results marshal to identical bytes — the fabric's core
// contract, checkable on demand.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"repro/internal/dsweep"
	"repro/internal/scenario"
)

func main() {
	var o sweepOpts
	flag.StringVar(&o.scenario, "scenario", "", "scenario JSON document to sweep (required)")
	flag.IntVar(&o.trials, "trials", 0, "override the document's trial count (0 = use the document's)")
	flag.StringVar(&o.workers, "workers", "", "comma-separated workers: local:N and/or imobif-served base URLs (default local:<cpus>)")
	flag.StringVar(&o.checkpoint, "checkpoint", "", "append-only JSONL checkpoint file (enables crash recovery)")
	flag.BoolVar(&o.resume, "resume", false, "resume from an existing checkpoint, re-running only missing trials")
	flag.StringVar(&o.out, "out", "", "write the merged result JSON to this file")
	flag.BoolVar(&o.progress, "progress", false, "print a progress line per completed trial")
	flag.BoolVar(&o.verify, "verify", false, "re-run serially and assert the merged bytes are identical")
	flag.Parse()
	if err := run(os.Stdout, o); err != nil {
		fmt.Fprintf(os.Stderr, "imobif-sweep: %v\n", err)
		os.Exit(1)
	}
}

// sweepOpts carries the CLI flags into run.
type sweepOpts struct {
	scenario   string
	trials     int
	workers    string
	checkpoint string
	resume     bool
	out        string
	progress   bool
	verify     bool
}

// run executes the sweep and reports in the CLI's pinned line format
// (see main_test.go — scripts parse these lines, so the shape is
// load-bearing).
func run(w io.Writer, o sweepOpts) error {
	if o.scenario == "" {
		return errors.New("missing -scenario (a JSON document; see examples/scenarios/)")
	}
	spec, err := scenario.LoadFile(o.scenario)
	if err != nil {
		return err
	}
	if o.trials > 0 {
		spec.Trials = o.trials
		if err := spec.Validate(); err != nil {
			return err
		}
	}
	trials := spec.Trials
	if trials < 1 {
		trials = 1
	}
	fp, err := spec.Fingerprint()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "sweep: scenario %q fingerprint %.12s trials %d\n", spec.Name, fp, trials)

	workerSpec := o.workers
	if workerSpec == "" {
		workerSpec = fmt.Sprintf("local:%d", runtime.GOMAXPROCS(0))
	}
	workers, err := dsweep.ParseWorkers(workerSpec)
	if err != nil {
		return err
	}
	names := make([]string, len(workers))
	for i, wk := range workers {
		names[i] = wk.Name()
	}
	fmt.Fprintf(w, "workers: %d slot(s): %s\n", len(workers), strings.Join(names, ", "))

	if o.resume && o.checkpoint != "" {
		if done, terr := countCheckpointed(o.checkpoint); terr == nil {
			fmt.Fprintf(w, "resume: %d trial(s) from checkpoint, %d to run\n", done, trials-done)
		}
	}

	coord := &dsweep.Coordinator{
		Workers:    workers,
		Checkpoint: o.checkpoint,
		Resume:     o.resume,
	}
	if o.progress {
		coord.OnProgress = func(done, total int) {
			fmt.Fprintf(w, "progress: %d/%d\n", done, total)
		}
	}
	res, stats, err := coord.Run(context.Background(), spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "done: %s\n", stats)
	fmt.Fprintf(w, "completed: %d/%d run(s), mean energy %.2f J\n", res.Completed, len(res.Runs), res.MeanTotalJoules)
	if o.checkpoint != "" {
		fmt.Fprintf(w, "checkpoint: %s (%d record(s))\n", o.checkpoint, trials)
	}
	body, err := json.Marshal(res)
	if err != nil {
		return err
	}
	if o.out != "" {
		if err := os.WriteFile(o.out, append(body, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "result: wrote %s (%d bytes)\n", o.out, len(body)+1)
	}
	if o.verify {
		serial, err := dsweep.Serial(context.Background(), spec)
		if err != nil {
			return fmt.Errorf("verify: serial reference: %w", err)
		}
		sbody, err := json.Marshal(serial)
		if err != nil {
			return err
		}
		if !bytes.Equal(body, sbody) {
			return fmt.Errorf("verify: merged result differs from the serial reference (%d vs %d bytes)", len(body), len(sbody))
		}
		fmt.Fprintf(w, "verify: merged result is byte-identical to the serial reference\n")
	}
	return nil
}

// countCheckpointed returns the number of complete trial records in the
// checkpoint at path (for the resume banner; the coordinator re-parses
// authoritatively).
func countCheckpointed(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	_, records, _, err := dsweep.ParseCheckpoint(f)
	if err != nil {
		return 0, err
	}
	return len(records), nil
}
