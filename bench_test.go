package imobif

// One benchmark per table/figure of the paper's evaluation (§4), plus the
// DESIGN.md ablations and microbenchmarks of the hot paths. Figure benches
// run reduced Monte-Carlo sweeps (the full 100-flow sweeps live behind
// cmd/imobif-figures) and report the figure's headline metrics alongside
// timing, so `go test -bench=.` doubles as a compact results table.

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/geom"
	"repro/internal/mobility"
	"repro/internal/spatial"
	"repro/internal/stats"
	"repro/internal/topo"
)

const benchFlows = 8

func benchParamsFig6(b *testing.B, variant string) experiments.Params {
	b.Helper()
	p, err := experiments.ParamsFig6(variant)
	if err != nil {
		b.Fatal(err)
	}
	p.Flows = benchFlows
	p.MaxFlowBits = 4 * p.MeanFlowBits
	return p
}

// BenchmarkFig5Convergence drives a single long flow to steady state under
// both strategies and reports the convergence quality metrics of the
// paper's Figure 5 snapshots.
func BenchmarkFig5Convergence(b *testing.B) {
	p, err := experiments.ParamsFig6("c")
	if err != nil {
		b.Fatal(err)
	}
	var last experiments.Fig5Result
	for i := 0; i < b.N; i++ {
		last, err = experiments.RunFig5(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(last.MinECollinearity, "minE-offline-m")
	b.ReportMetric(last.MinESpacingCV, "minE-spacing-cv")
	b.ReportMetric(last.PowerEnergyRatioCV, "thm1-ratio-cv")
}

func benchFig6(b *testing.B, variant string) {
	p := benchParamsFig6(b, variant)
	var last experiments.Fig6Result
	var err error
	for i := 0; i < b.N; i++ {
		last, err = experiments.RunFig6(p, variant)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(last.AvgRatioCostUnaware, "cost-unaware-ratio")
	b.ReportMetric(last.AvgRatioInformed, "imobif-ratio")
}

// BenchmarkFig6a reproduces Figure 6(a): short flows, k=0.5, α=2.
func BenchmarkFig6a(b *testing.B) { benchFig6(b, "a") }

// BenchmarkFig6b reproduces Figure 6(b): mobility vs transmission energy
// of the cost-unaware approach on short flows.
func BenchmarkFig6b(b *testing.B) {
	p := benchParamsFig6(b, "a")
	var last experiments.Fig6bResult
	var err error
	for i := 0; i < b.N; i++ {
		last, err = experiments.RunFig6b(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(last.AvgMobility, "mobility-J")
	b.ReportMetric(last.AvgTransmission, "transmission-J")
}

// BenchmarkFig6c reproduces Figure 6(c): long flows, k=0.5, α=2.
func BenchmarkFig6c(b *testing.B) { benchFig6(b, "c") }

// BenchmarkFig6d reproduces Figure 6(d): long flows, k=1.0.
func BenchmarkFig6d(b *testing.B) { benchFig6(b, "d") }

// BenchmarkFig6e reproduces Figure 6(e): long flows, k=0.1.
func BenchmarkFig6e(b *testing.B) { benchFig6(b, "e") }

// BenchmarkFig6f reproduces Figure 6(f): long flows, α=3.
func BenchmarkFig6f(b *testing.B) { benchFig6(b, "f") }

// BenchmarkSweep runs the Figure 6(c) Monte-Carlo sweep once per explicit
// worker count. Results are bit-identical at every concurrency (see the
// determinism tests), so the sub-benchmarks measure scaling alone. The
// counts are pinned rather than derived from GOMAXPROCS — the old
// Serial/Parallel pair both resolved to one worker on a single-core
// machine and measured nothing — and the "workers" gauge reports the
// count the sweep engine actually used so a misconfigured run is visible
// in the output.
func BenchmarkSweep(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			p := benchParamsFig6(b, "c")
			p.Flows = 16
			p.Concurrency = workers
			var last experiments.Fig6Result
			var err error
			for i := 0; i < b.N; i++ {
				last, err = experiments.RunFig6(p, "c")
				if err != nil {
					b.Fatal(err)
				}
			}
			if last.Sweep.Workers != workers {
				b.Fatalf("sweep ran with %d workers, want %d", last.Sweep.Workers, workers)
			}
			b.ReportMetric(last.Sweep.TrialsPerSec(), "trials/s")
			b.ReportMetric(float64(last.Sweep.Workers), "workers")
		})
	}
}

// BenchmarkFig7 reproduces Figure 7: notification packets per flow.
func BenchmarkFig7(b *testing.B) {
	p := experiments.ParamsFig7()
	p.Flows = benchFlows
	p.MaxFlowBits = 4 * p.MeanFlowBits
	var last experiments.Fig7Result
	var err error
	for i := 0; i < b.N; i++ {
		last, err = experiments.RunFig7(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(last.Avg, "avg-notifications")
}

// BenchmarkFig8 reproduces Figure 8: the CDF of the system lifetime ratio
// under the max-lifetime strategy.
func BenchmarkFig8(b *testing.B) {
	p := experiments.ParamsFig8()
	p.Flows = benchFlows
	p.MaxFlowBits = 4 * p.MeanFlowBits
	var last experiments.Fig8Result
	var err error
	for i := 0; i < b.N; i++ {
		last, err = experiments.RunFig8(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(last.AvgRatioCostUnaware, "cost-unaware-lifetime")
	b.ReportMetric(last.AvgRatioInformed, "imobif-lifetime")
}

// BenchmarkAblationFlowLength sweeps flow-length estimation error (A1).
func BenchmarkAblationFlowLength(b *testing.B) {
	p := benchParamsFig6(b, "a")
	p.Flows = 4
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFlowLengthSensitivity(p, []float64{0.5, 1, 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRelaySelection compares route planners (A2).
func BenchmarkAblationRelaySelection(b *testing.B) {
	p := benchParamsFig6(b, "a")
	p.Flows = 4
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunRelaySelection(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMultiFlow runs concurrent flows per world (A3).
func BenchmarkAblationMultiFlow(b *testing.B) {
	p := benchParamsFig6(b, "a")
	p.Flows = 4
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunMultiFlow(p, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationControlOverhead charges control traffic (A4).
func BenchmarkAblationControlOverhead(b *testing.B) {
	p := benchParamsFig6(b, "a")
	p.Flows = 4
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunControlOverhead(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationStepSweep sweeps the per-packet movement cap (A5).
func BenchmarkAblationStepSweep(b *testing.B) {
	p := benchParamsFig6(b, "a")
	p.Flows = 4
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunStepSweep(p, []float64{1, 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAlphaPrime compares the α′ approximation with the exact
// Theorem 1 solve (A6).
func BenchmarkAblationAlphaPrime(b *testing.B) {
	p := experiments.ParamsFig8()
	p.Flows = 4
	p.MaxFlowBits = 2 * p.MeanFlowBits
	var last experiments.AlphaPrimeQualityResult
	var err error
	for i := 0; i < b.N; i++ {
		last, err = experiments.RunAlphaPrimeQuality(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(last.AvgRatioApprox, "approx-lifetime")
	b.ReportMetric(last.AvgRatioExact, "exact-lifetime")
}

// BenchmarkSimulationRun measures end-to-end simulator throughput on a
// single 10 MB informed flow over the public API.
func BenchmarkSimulationRun(b *testing.B) {
	cfg := DefaultConfig()
	net, err := NewRandomNetwork(cfg, 3)
	if err != nil {
		b.Fatal(err)
	}
	src, dst, err := net.PickFlowEndpoints(3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := NewSimulation(cfg, net)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.AddFlow(src, dst, 10<<20); err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFaultOverhead quantifies what the fault layer costs along the
// packet hot path, one sub-benchmark per rung of the ladder:
//
//   - ideal: Config.Faults nil — the pre-fault fast path; the radio never
//     consults an injector and nodes never track pending packets.
//   - hook: injector installed with p=0 — every unicast pays one Drop()
//     call that never fires. This is the "zero-fault hook overhead" the
//     ideal path must not silently regress toward.
//   - retry: lossless channel with the retry/ack transport on — adds a
//     per-hop ack packet and pending-table bookkeeping per data packet.
//   - lossy-retry: p=0.1 with retries — the realistic faulty regime.
func BenchmarkFaultOverhead(b *testing.B) {
	variants := []struct {
		name   string
		faults *FaultConfig
	}{
		{"ideal", nil},
		{"hook", &FaultConfig{LossP: 0, Seed: 1}},
		{"retry", &FaultConfig{RetryLimit: 5, RetryTimeoutSec: 0.2, Seed: 1}},
		{"lossy-retry", &FaultConfig{LossP: 0.1, RetryLimit: 5, RetryTimeoutSec: 0.2, Seed: 1}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Faults = v.faults
			net, err := NewRandomNetwork(cfg, 3)
			if err != nil {
				b.Fatal(err)
			}
			src, dst, err := net.PickFlowEndpoints(3)
			if err != nil {
				b.Fatal(err)
			}
			var last *Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim, err := NewSimulation(cfg, net)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sim.AddFlow(src, dst, 10<<20); err != nil {
					b.Fatal(err)
				}
				if last, err = sim.Run(); err != nil {
					b.Fatal(err)
				}
			}
			if !last.Flows[0].Completed {
				b.Fatalf("flow did not complete under %s", v.name)
			}
			b.ReportMetric(last.Flows[0].DeliveryRatio, "delivery-ratio")
		})
	}
}

// BenchmarkMotionOverhead quantifies what the ambient-motion layer costs
// on an end-to-end run, one sub-benchmark per rung of the ladder:
//
//   - off: Config.Motion nil — the pre-motion fast path; the world arms
//     zero movement events.
//   - stationary: an explicit stationary model — must cost the same as
//     off (motion.New returns nil; goldens prove bit-identity).
//   - rwp: random-waypoint at pedestrian speed — every node pays one
//     movement event per simulated second plus the grid's
//     cell-crossing re-bucketing.
//   - rpgm: group mobility — adds the lazy group-reference advance on
//     top of per-node stepping.
func BenchmarkMotionOverhead(b *testing.B) {
	variants := []struct {
		name   string
		motion *MotionConfig
	}{
		{"off", nil},
		{"stationary", &MotionConfig{Model: MotionStationary}},
		{"rwp", &MotionConfig{Model: MotionRandomWaypoint, Seed: 1}},
		{"rpgm", &MotionConfig{Model: MotionRPGM, Seed: 1}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Motion = v.motion
			net, err := NewRandomNetwork(cfg, 3)
			if err != nil {
				b.Fatal(err)
			}
			src, dst, err := net.PickFlowEndpoints(3)
			if err != nil {
				b.Fatal(err)
			}
			var last *Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim, err := NewSimulation(cfg, net)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sim.AddFlow(src, dst, 10<<20); err != nil {
					b.Fatal(err)
				}
				if last, err = sim.Run(); err != nil {
					b.Fatal(err)
				}
			}
			// Ambient motion legitimately breaks the pinned path, so only
			// the disabled rungs must complete; all report delivery.
			if v.motion == nil && !last.Flows[0].Completed {
				b.Fatal("flow did not complete with motion off")
			}
			b.ReportMetric(last.Flows[0].DeliveryRatio, "delivery-ratio")
		})
	}
}

// BenchmarkObserverOverhead quantifies what the observability layer costs
// along the hot path, one sub-benchmark per rung:
//
//   - none: zero options — the pay-for-what-you-use baseline; the world's
//     single cached `observing` branch is the entire cost, so this rung
//     must stay within noise of the pre-observability simulator.
//   - observer: a no-op Observer attached — every event pays typed-struct
//     construction and one dynamic dispatch.
//   - timeseries: per-second metrics sampling, no event dispatch.
//   - trace-jsonl: every event JSON-encoded to an in-memory buffer — the
//     full export path minus the disk.
func BenchmarkObserverOverhead(b *testing.B) {
	variants := []struct {
		name string
		opts func() []Option
	}{
		{"none", func() []Option { return nil }},
		{"observer", func() []Option { return []Option{WithObserver(BaseObserver{})} }},
		{"timeseries", func() []Option { return []Option{WithTimeSeries(1)} }},
		{"trace-jsonl", func() []Option {
			var sink bytes.Buffer
			return []Option{WithTraceWriter(&sink)}
		}},
	}
	cfg := DefaultConfig()
	net, err := NewRandomNetwork(cfg, 3)
	if err != nil {
		b.Fatal(err)
	}
	src, dst, err := net.PickFlowEndpoints(3)
	if err != nil {
		b.Fatal(err)
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var last *Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim, err := NewSimulation(cfg, net, v.opts()...)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sim.AddFlow(src, dst, 10<<20); err != nil {
					b.Fatal(err)
				}
				if last, err = sim.Run(); err != nil {
					b.Fatal(err)
				}
			}
			if !last.Flows[0].Completed {
				b.Fatalf("flow did not complete under %s", v.name)
			}
		})
	}
}

// BenchmarkNeighborRecompute measures a full neighbor-table recomputation
// (one InRange query per node — what netsim's initial HELLO seeding and
// the discovery flood fan-out do) under the grid index versus the
// brute-force scan, at the paper's node density (100 nodes per km²) so
// the field grows with n and per-query neighborhood size stays constant.
// The grid's O(k)-per-query behaviour versus brute's O(n) is the whole
// point of internal/spatial; see EXPERIMENTS.md "Scaling" for recorded
// ratios.
func BenchmarkNeighborRecompute(b *testing.B) {
	const rangeM = 200
	for _, kind := range []spatial.Kind{spatial.KindGrid, spatial.KindBrute} {
		for _, n := range []int{100, 1000, 5000} {
			b.Run(fmt.Sprintf("%s-n%d", kind, n), func(b *testing.B) {
				side := 1000 * math.Sqrt(float64(n)/100)
				pts := topo.PlaceUniform(stats.NewSource(7), n, side, side)
				idx, err := spatial.FromPoints(kind, rangeM, pts)
				if err != nil {
					b.Fatal(err)
				}
				var buf []int
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for j, p := range pts {
						buf = idx.AppendInRange(buf[:0], p, rangeM)
						_ = j
					}
				}
			})
		}
	}
}

// BenchmarkWorldSeeding measures netsim.NewWorld on large placements —
// dominated by the initial HELLO-table seeding, the first beneficiary of
// the spatial index.
func BenchmarkWorldSeeding(b *testing.B) {
	for _, kind := range []spatial.Kind{spatial.KindGrid, spatial.KindBrute} {
		for _, n := range []int{100, 1000} {
			b.Run(fmt.Sprintf("%s-n%d", kind, n), func(b *testing.B) {
				side := 1000 * math.Sqrt(float64(n)/100)
				cfg := DefaultConfig()
				cfg.Nodes = n
				cfg.FieldWidth, cfg.FieldHeight = side, side
				cfg.NeighborIndex = string(kind)
				net, err := NewRandomNetwork(cfg, 7)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := NewSimulation(cfg, net); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkGreedyRouting measures route planning on a 100-node network.
func BenchmarkGreedyRouting(b *testing.B) {
	src := stats.NewSource(1)
	pts := topo.PlaceUniform(src, 100, 1000, 1000)
	g, err := topo.NewGraph(pts, 200)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Rotate over node pairs; ignore unroutable ones.
		a := i % 100
		c := (i*37 + 13) % 100
		if a == c {
			continue
		}
		_, _ = g.GreedyPath(a, c)
	}
}

// BenchmarkStrategyMinEnergy measures the midpoint strategy's per-packet
// target computation.
func BenchmarkStrategyMinEnergy(b *testing.B) {
	v := mobility.View{
		Prev:         mobility.Peer{Pos: geom.Pt(0, 0), Residual: 100},
		Self:         mobility.Peer{Pos: geom.Pt(90, 40), Residual: 80},
		Next:         mobility.Peer{Pos: geom.Pt(200, 0), Residual: 60},
		ResidualBits: 8e6,
	}
	s := mobility.MinEnergy{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.NextPosition(v); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStrategyMaxLifetime measures the α′ split computation.
func BenchmarkStrategyMaxLifetime(b *testing.B) {
	v := mobility.View{
		Prev:         mobility.Peer{Pos: geom.Pt(0, 0), Residual: 100},
		Self:         mobility.Peer{Pos: geom.Pt(90, 40), Residual: 80},
		Next:         mobility.Peer{Pos: geom.Pt(200, 0), Residual: 60},
		ResidualBits: 8e6,
	}
	s := mobility.MaxLifetime{AlphaPrime: 1.7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.NextPosition(v); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStrategyMaxLifetimeExact measures the bisection solve.
func BenchmarkStrategyMaxLifetimeExact(b *testing.B) {
	v := mobility.View{
		Prev:         mobility.Peer{Pos: geom.Pt(0, 0), Residual: 100},
		Self:         mobility.Peer{Pos: geom.Pt(90, 40), Residual: 80},
		Next:         mobility.Peer{Pos: geom.Pt(200, 0), Residual: 60},
		ResidualBits: 8e6,
	}
	s := mobility.MaxLifetimeExact{Tx: energy.DefaultTxModel()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.NextPosition(v); err != nil {
			b.Fatal(err)
		}
	}
}

// strategySink keeps BenchmarkStrategyOverhead's strategy calls live.
var strategySink float64

// BenchmarkStrategyOverhead pins the plug-in registry's cost contract:
// a registry-built strategy dispatches at the same per-packet price as a
// directly constructed one (construction is the only extra work, and it
// happens once per run, not per packet). The resolve rung measures that
// one-time mobility.New lookup.
func BenchmarkStrategyOverhead(b *testing.B) {
	v := mobility.View{
		Prev:         mobility.Peer{Pos: geom.Pt(0, 0), Residual: 100},
		Self:         mobility.Peer{Pos: geom.Pt(90, 40), Residual: 80},
		Next:         mobility.Peer{Pos: geom.Pt(200, 0), Residual: 60},
		ResidualBits: 8e6,
	}
	env := mobility.Env{Tx: energy.DefaultTxModel(), Range: 200}
	// Each op is a 1000-call batch: single calls are ~20 ns, below timer
	// resolution at the gate's low iteration counts.
	const batch = 1000
	// dispatch sinks the target into strategySink so the compiler cannot
	// eliminate the devirtualized concrete call.
	dispatch := func(b *testing.B, s mobility.Strategy) {
		b.Helper()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var acc float64
			for j := 0; j < batch; j++ {
				p, err := s.NextPosition(v)
				if err != nil {
					b.Fatal(err)
				}
				acc += p.X
			}
			strategySink = acc
		}
	}
	b.Run("direct", func(b *testing.B) {
		// Held as the interface, exactly as netsim.Config stores it.
		dispatch(b, mobility.MinEnergy{})
	})
	b.Run("registry", func(b *testing.B) {
		s, err := mobility.New("min-energy", env, nil)
		if err != nil {
			b.Fatal(err)
		}
		dispatch(b, s)
	})
	b.Run("resolve", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := 0; j < batch; j++ {
				if _, err := mobility.New("min-energy", env, nil); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkPowerTableLookup measures the Assumption-4 table lookup.
func BenchmarkPowerTableLookup(b *testing.B) {
	table, err := energy.NewPowerTable(energy.DefaultTxModel(), 200, 256)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = table.Lookup(float64(i%200) + 0.5)
	}
}

// BenchmarkExtensionRecruitment runs the relay-recruitment study
// (optimal slots + Hungarian assignment + deployment).
func BenchmarkExtensionRecruitment(b *testing.B) {
	p := benchParamsFig6(b, "c")
	p.Flows = 4
	var last experiments.RecruitmentResult
	var err error
	for i := 0; i < b.N; i++ {
		last, err = experiments.RunRelayRecruitment(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(last.AvgRatioRecruited, "recruited-ratio")
	b.ReportMetric(last.AvgRatioInformedGreedy, "imobif-ratio")
}

// BenchmarkExtensionThresholdSweep traces the break-even crossover.
func BenchmarkExtensionThresholdSweep(b *testing.B) {
	p := benchParamsFig6(b, "c")
	p.Flows = 3
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunThresholdSweep(p, []float64{8e4, 8e7}); err != nil {
			b.Fatal(err)
		}
	}
}
