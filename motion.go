package imobif

// The public ambient-mobility surface: MotionConfig selects and
// parameterizes a motion model from internal/motion. Ambient motion is
// the environment's movement — every node drifts under the model,
// independent of (and composing with) the iMobif strategy's informed
// relay movement. Attach one via Config.Motion; nil (or
// MotionStationary) keeps every node parked, bit-identical to a build
// without the layer.

import "repro/internal/motion"

// Motion model names for MotionConfig.Model.
const (
	// MotionStationary parks every node (the default).
	MotionStationary = motion.ModelStationary
	// MotionRandomWaypoint is the classic random-waypoint model: walk to
	// a uniform waypoint, pause, repeat.
	MotionRandomWaypoint = motion.ModelRandomWaypoint
	// MotionGaussMarkov is the Gauss-Markov model: velocity follows a
	// first-order autoregressive process with memory Alpha.
	MotionGaussMarkov = motion.ModelGaussMarkov
	// MotionRPGM is reference-point group mobility: groups patrol the
	// field; members orbit their group's reference point within a
	// cohesion radius.
	MotionRPGM = motion.ModelRPGM
)

// MotionConfig parameterizes the ambient-mobility layer (see
// internal/motion for the underlying models). Zero-valued knobs take the
// model defaults; the field defaults to Config.FieldWidth/FieldHeight.
type MotionConfig struct {
	// Model is one of the Motion* constants. Empty means stationary.
	Model string
	// Seed seeds the layer's private deterministic streams (one per node,
	// plus one per group for MotionRPGM).
	Seed int64
	// IntervalSec is the movement-step period in simulated seconds
	// (default 1).
	IntervalSec float64
	// SpeedLo and SpeedHi bound node speed draws in m/s (default
	// [0.5, 1.5], a pedestrian range).
	SpeedLo, SpeedHi float64
	// PauseSec is the random-waypoint pause at each waypoint.
	PauseSec float64
	// Alpha is the Gauss-Markov memory parameter in [0, 1) (default
	// 0.75).
	Alpha float64
	// Groups is the RPGM group count (default 4).
	Groups int
	// RadiusMeters is the RPGM cohesion radius (default 50).
	RadiusMeters float64
	// ChargeEnergy charges node batteries for ambient movement with the
	// locomotion model E_M(d) = MobilityCost·d — the same accounting as
	// iMobif relay movement. Default off: ambient motion models a free
	// carrier (a person or vehicle moving the node).
	ChargeEnergy bool
}

// motion converts the public motion configuration to the internal one,
// defaulting the field to the deployment area.
func (m *MotionConfig) motion(fieldW, fieldH float64) *motion.Config {
	if m == nil {
		return nil
	}
	return &motion.Config{
		Model:         m.Model,
		Seed:          m.Seed,
		Interval:      m.IntervalSec,
		FieldW:        fieldW,
		FieldH:        fieldH,
		SpeedLo:       m.SpeedLo,
		SpeedHi:       m.SpeedHi,
		Pause:         m.PauseSec,
		Alpha:         m.Alpha,
		Groups:        m.Groups,
		Radius:        m.RadiusMeters,
		ChargeBattery: m.ChargeEnergy,
	}
}
