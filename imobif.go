package imobif

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/geom"
	"repro/internal/mobility"
	"repro/internal/netsim"
	"repro/internal/radio"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/spatial"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/trace"
)

// StrategyConfig selects the mobility strategy a flow runs: a registered
// strategy name plus optional per-strategy tuning parameters. Strategies
// are plug-ins — any name published through the mobility registry
// resolves here, and Strategies lists what is available. Unknown names
// and unknown or out-of-range parameters are configuration errors that
// name the accepted set.
type StrategyConfig struct {
	// Name is the registered strategy name (see Strategies).
	Name string
	// Params are the strategy's tuning knobs; nil or empty means all
	// defaults. Each strategy documents (and validates) its own names —
	// e.g. "horizon" for rolling-horizon, "tiers" for cluster-rotation.
	Params map[string]float64
}

// Strategy selects a registered strategy by name with default
// parameters. (In earlier releases Strategy was a string type; this
// constructor keeps the conversion spelling Strategy("min-energy")
// working unchanged.)
func Strategy(name string) StrategyConfig { return StrategyConfig{Name: name} }

// The built-in strategies: the paper's two (§3) plus the exact-solve
// lifetime variant, the stationary null strategy, and the competitor
// baselines shipped with the registry. Third-party strategies are
// selected with Strategy(name) or a StrategyConfig literal.
var (
	// StrategyMinEnergy minimizes total transmission energy: relays
	// converge to evenly spaced positions on the source–destination line
	// (paper §3.1, after Goldenberg et al.).
	StrategyMinEnergy = Strategy("min-energy")
	// StrategyMaxLifetime maximizes system lifetime: relay spacing is
	// proportional to residual energy via the α′ power-law approximation
	// (paper §3.2, Theorem 1).
	StrategyMaxLifetime = Strategy("max-lifetime")
	// StrategyMaxLifetimeExact solves the Theorem 1 split numerically on
	// the exact radio model instead of the α′ approximation.
	StrategyMaxLifetimeExact = Strategy("max-lifetime-exact")
	// StrategyStationary never moves relays (the null strategy).
	StrategyStationary = Strategy("stationary")
	// StrategyMaxLifetimeRouting is the no-movement max-lifetime
	// flow-routing baseline (after Lipiński): relays stay put and flows
	// are routed around energy-poor nodes instead. Params: "exponent".
	StrategyMaxLifetimeRouting = Strategy("max-lifetime-routing")
	// StrategyRollingHorizon repositions relays by a discounted lookahead
	// cost-to-go (after Jaleel & Shamma). Params: "horizon", "discount",
	// "samples".
	StrategyRollingHorizon = Strategy("rolling-horizon")
	// StrategyClusterRotation rotates the repositioning role LEACH-style
	// among energy tiers. Params: "tiers".
	StrategyClusterRotation = Strategy("cluster-rotation")
)

// Strategies returns every registered strategy name in sorted order.
func Strategies() []string { return mobility.Names() }

// Mode selects the mobility control approach (the three compared in the
// paper's evaluation).
type Mode string

// Control modes.
const (
	// ModeNoMobility never moves nodes (the paper's baseline).
	ModeNoMobility Mode = "no-mobility"
	// ModeCostUnaware always moves nodes, ignoring cost (the paper's
	// second comparator).
	ModeCostUnaware Mode = "cost-unaware"
	// ModeInformed is iMobif: movement is enabled and disabled by the
	// destination's online cost-benefit comparison.
	ModeInformed Mode = "informed"
)

// Config parameterizes a simulation. DefaultConfig returns the paper's
// reconstructed evaluation setup; all units are SI (meters, joules,
// seconds) except where the field name says otherwise.
type Config struct {
	// Nodes is the network size; FieldWidth/FieldHeight the deployment
	// area in meters.
	Nodes       int
	FieldWidth  float64
	FieldHeight float64
	// Range is the radio communication range in meters.
	Range float64
	// TxA (J/bit), TxB (J·m^−PathLossExp/bit) and PathLossExp define the
	// transmission power model P(d) = TxA + TxB·d^PathLossExp.
	TxA, TxB    float64
	PathLossExp float64
	// MobilityCost is k in the locomotion model E_M(d) = k·d, J/m.
	MobilityCost float64
	// MaxStepMeters caps movement per received data packet.
	MaxStepMeters float64
	// PacketBytes is the data packet payload size.
	PacketBytes int
	// FlowRateBytesPerSec paces packet emission.
	FlowRateBytesPerSec float64
	// Strategy and Mode select the mobility strategy and control
	// approach. Strategy names any registered plug-in (see Strategies);
	// the legacy spelling Strategy("min-energy") still works.
	Strategy StrategyConfig
	Mode     Mode
	// ChargeControl charges HELLO/notification traffic to node
	// batteries (the paper treats control traffic as free).
	ChargeControl bool
	// EstimateScale scales the source's advertised residual flow length
	// (1 = perfect estimate).
	EstimateScale float64
	// StopOnFirstDeath ends the run when any node depletes its battery.
	StopOnFirstDeath bool
	// NeighborIndex selects the spatial index backing neighbor queries:
	// "grid" (the default when empty) answers range queries in O(k) via
	// radio-range-sized cells and makes large Nodes counts tractable;
	// "brute" is the O(n) reference scan kept for differential testing.
	// Both produce bit-identical results.
	NeighborIndex string
	// Faults optionally enables the fault-injection layer: seeded per-link
	// packet loss, scheduled node crash/recovery, the hop-by-hop retry/ack
	// transport, and route repair around dead relays. Nil keeps the ideal
	// channel, bit-identical to a build without the fault layer.
	Faults *FaultConfig
	// Motion optionally enables the ambient-mobility layer: every node
	// drifts under the configured model (random waypoint, Gauss-Markov,
	// or reference-point group mobility), independent of the iMobif
	// strategy's informed relay movement. Nil (or a stationary model)
	// arms no movement events, bit-identical to a build without the
	// layer.
	Motion *MotionConfig
	// Parallel runs the simulation on the conservative-lookahead
	// windowed scheduler, which precomputes independent per-node work
	// (ambient motion steps, HELLO drift scans) across Shards worker
	// goroutines while firing events in exact serial order — results
	// are byte-identical to the default serial scheduler. Off by
	// default.
	Parallel bool
	// Shards is the worker count for Parallel runs; zero picks
	// min(GOMAXPROCS, 8). Ignored when Parallel is false.
	Shards int
}

// DefaultConfig returns the paper's reconstructed evaluation parameters
// (see DESIGN.md §1): 100 nodes on 1000×1000 m, 200 m range,
// a=1e−7 b=1e−10 α=2 radio, k=0.5 J/m, 1 KB packets at 1 KB/s, 1 m max
// step per packet, informed mode with the min-energy strategy.
func DefaultConfig() Config {
	return Config{
		Nodes:               100,
		FieldWidth:          1000,
		FieldHeight:         1000,
		Range:               200,
		TxA:                 1e-7,
		TxB:                 1e-10,
		PathLossExp:         2,
		MobilityCost:        0.5,
		MaxStepMeters:       1,
		PacketBytes:         1024,
		FlowRateBytesPerSec: 1024,
		Strategy:            StrategyMinEnergy,
		Mode:                ModeInformed,
		EstimateScale:       1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if _, err := c.strategy(); err != nil {
		return err
	}
	if _, err := c.mode(); err != nil {
		return err
	}
	cfg, err := c.netsim()
	if err != nil {
		return err
	}
	return cfg.Validate()
}

func (c Config) txModel() energy.TxModel {
	return energy.TxModel{A: c.TxA, B: c.TxB, Alpha: c.PathLossExp}
}

func (c Config) strategy() (mobility.Strategy, error) {
	table, err := energy.NewPowerTable(c.txModel(), c.Range, 256)
	if err != nil {
		return nil, fmt.Errorf("imobif: building power table: %w", err)
	}
	env := mobility.Env{
		Tx:       c.txModel(),
		Range:    c.Range,
		Table:    table,
		Mobility: energy.MobilityModel{K: c.MobilityCost},
	}
	s, err := mobility.New(c.Strategy.Name, env, mobility.Params(c.Strategy.Params))
	if err != nil {
		return nil, fmt.Errorf("imobif: %w", err)
	}
	return s, nil
}

func (c Config) mode() (netsim.Mode, error) {
	switch c.Mode {
	case ModeNoMobility:
		return netsim.ModeNoMobility, nil
	case ModeCostUnaware:
		return netsim.ModeCostUnaware, nil
	case ModeInformed:
		return netsim.ModeInformed, nil
	default:
		return 0, fmt.Errorf("imobif: unknown mode %q", c.Mode)
	}
}

func (c Config) netsim() (netsim.Config, error) {
	strat, err := c.strategy()
	if err != nil {
		return netsim.Config{}, err
	}
	mode, err := c.mode()
	if err != nil {
		return netsim.Config{}, err
	}
	cfg := netsim.DefaultConfig()
	cfg.Radio = radio.Config{Tx: c.txModel(), Range: c.Range, ChargeControl: c.ChargeControl}
	cfg.Mobility = energy.MobilityModel{K: c.MobilityCost}
	cfg.Strategy = strat
	cfg.Mode = mode
	cfg.MaxStep = c.MaxStepMeters
	cfg.PacketBits = float64(c.PacketBytes) * 8
	cfg.FlowRateBps = c.FlowRateBytesPerSec * 8
	cfg.EstimateScale = c.EstimateScale
	cfg.StopOnFirstDeath = c.StopOnFirstDeath
	cfg.NeighborIndex = spatial.Kind(c.NeighborIndex)
	cfg.Faults = c.Faults.fault()
	cfg.Motion = c.Motion.motion(c.FieldWidth, c.FieldHeight)
	cfg.Parallel = c.Parallel
	cfg.Shards = c.Shards
	return cfg, nil
}

// Node is one node's observable state.
type Node struct {
	ID int
	// X, Y is the position in meters.
	X, Y float64
	// Joules is the (initial or residual) battery level.
	Joules float64
}

// Network is an immutable network description: node positions and initial
// energies. Build one with NewRandomNetwork or NewNetwork and hand it to
// NewSimulation; the same Network can seed many simulations (each
// simulation copies the state).
type Network struct {
	positions []geom.Point
	energies  []float64
	radioRng  float64
}

// NewRandomNetwork places cfg.Nodes nodes uniformly at random in the
// configured field, with initial energies drawn uniformly from
// [5000, 10000] J (ample for energy experiments; set per-node energies
// with NewNetwork for lifetime studies).
func NewRandomNetwork(cfg Config, seed int64) (*Network, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("imobif: need at least two nodes, got %d", cfg.Nodes)
	}
	src := stats.NewSource(seed)
	positions := topo.PlaceUniform(src, cfg.Nodes, cfg.FieldWidth, cfg.FieldHeight)
	energies := make([]float64, cfg.Nodes)
	for i := range energies {
		energies[i] = src.Uniform(5000, 10000)
	}
	return NewNetwork(positionsToNodes(positions, energies), cfg.Range)
}

func positionsToNodes(pos []geom.Point, energies []float64) []Node {
	nodes := make([]Node, len(pos))
	for i := range pos {
		nodes[i] = Node{ID: i, X: pos[i].X, Y: pos[i].Y, Joules: energies[i]}
	}
	return nodes
}

// NewNetwork builds a network from explicit node states. Node IDs are
// their indices. radioRange is used by PickFlowEndpoints and
// PlanGreedyRoute; pass the same value as the Config.Range of the
// simulations this network will seed, or routes planned here may not be
// realizable on the simulated medium.
func NewNetwork(nodes []Node, radioRange float64) (*Network, error) {
	if len(nodes) < 2 {
		return nil, fmt.Errorf("imobif: need at least two nodes, got %d", len(nodes))
	}
	if radioRange <= 0 {
		return nil, fmt.Errorf("imobif: non-positive radio range %v", radioRange)
	}
	n := &Network{radioRng: radioRange}
	for i, node := range nodes {
		if node.Joules < 0 {
			return nil, fmt.Errorf("imobif: node %d has negative energy", i)
		}
		n.positions = append(n.positions, geom.Pt(node.X, node.Y))
		n.energies = append(n.energies, node.Joules)
	}
	return n, nil
}

// Len returns the number of nodes.
func (n *Network) Len() int { return len(n.positions) }

// Nodes returns the node states.
func (n *Network) Nodes() []Node { return positionsToNodes(n.positions, n.energies) }

// PickFlowEndpoints returns a random source/destination pair that greedy
// geographic routing can connect with at least one relay in between,
// mirroring the paper's instance generation. It fails if no routable pair
// is found after many attempts (disconnected or too-sparse network).
func (n *Network) PickFlowEndpoints(seed int64) (src, dst int, err error) {
	g, err := topo.NewGraph(n.positions, n.radioRng)
	if err != nil {
		return 0, 0, err
	}
	rng := stats.NewSource(seed)
	for attempt := 0; attempt < 1000; attempt++ {
		a := rng.Intn(len(n.positions))
		b := rng.Intn(len(n.positions))
		if a == b {
			continue
		}
		path, err := g.GreedyPath(a, b)
		if err != nil || len(path) < 3 {
			continue
		}
		return a, b, nil
	}
	return 0, 0, errors.New("imobif: no routable flow endpoints found")
}

// FlowID identifies a flow within a simulation.
type FlowID uint64

// FlowResult is one flow's outcome.
type FlowResult struct {
	// Completed reports whether every flow byte reached the destination.
	Completed bool
	// DeliveredBytes counts payload delivered end-to-end.
	DeliveredBytes float64
	// Notifications counts destination→source mobility status-change
	// packets; StatusFlips counts the changes the source applied.
	Notifications int
	StatusFlips   int
	// DurationSeconds is the virtual time the flow was active.
	DurationSeconds float64
	// LifetimeSeconds is the system lifetime observed by this flow's
	// run: time of the first node death, or the run duration if no node
	// died.
	LifetimeSeconds float64
	// PathNodes is the number of nodes on the flow path.
	PathNodes int
	// PacketsEmitted and PacketsDropped count the flow's data packets put
	// on the air and those that never reached the destination. On the
	// ideal channel (Config.Faults nil) PacketsDropped is zero.
	PacketsEmitted int
	PacketsDropped int
	// DeliveryRatio is the delivered fraction of emitted packets (1 for
	// an idle flow).
	DeliveryRatio float64
}

// ChannelStats reports the radio medium's activity during a run.
type ChannelStats struct {
	// Unicasts and Broadcasts count transmissions; Delivered counts
	// per-receiver handoffs.
	Unicasts   uint64
	Broadcasts uint64
	Delivered  uint64
	// RangeDrops counts unicasts to out-of-range receivers; DeadDrops
	// counts transmissions lost to depleted senders or receivers;
	// FaultDrops counts losses injected by the fault layer.
	RangeDrops uint64
	DeadDrops  uint64
	FaultDrops uint64
}

// TransportStats reports the retry/ack transport's activity during a run.
// All counters are zero when the fault layer or its retry transport is
// disabled.
type TransportStats struct {
	// Retransmits counts hop-level data retransmissions; Acks counts acks
	// accepted; DupAcks and DupData count suppressed duplicates.
	Retransmits uint64
	Acks        uint64
	DupAcks     uint64
	DupData     uint64
	// LinkBreaks counts retry-limit exhaustions; RouteRepairs counts
	// successful path re-plans around dead or unreachable relays.
	LinkBreaks   uint64
	RouteRepairs uint64
}

// Result summarizes a simulation run.
type Result struct {
	// Flows holds per-flow outcomes in AddFlow order.
	Flows []FlowResult
	// TxJoules, MoveJoules, ControlJoules decompose network-wide energy
	// consumption.
	TxJoules      float64
	MoveJoules    float64
	ControlJoules float64
	// FirstDeathSeconds is the virtual time of the first node death, or
	// a negative value if no node died.
	FirstDeathSeconds float64
	// DurationSeconds is the virtual time at which the run ended.
	DurationSeconds float64
	// Before and After are node states at the start and end of the run
	// (the paper's Figure 5 views).
	Before, After []Node
	// Channel reports radio medium counters; Transport reports the
	// retry/ack transport's counters (all zero on the ideal channel).
	Channel   ChannelStats
	Transport TransportStats
	// ChannelLossRate is the fault injector's observed loss fraction
	// (0 when fault injection is off).
	ChannelLossRate float64
	// Series holds time-resolved run metrics when the simulation was built
	// with WithTimeSeries; nil otherwise. Samples are in strictly
	// increasing time order: one at t=0, one per interval, and one at the
	// moment the run ended.
	Series []Sample
	// Canceled reports that RunContext stopped early because its context
	// was canceled. The rest of the Result is the deterministic partial
	// state at the point the run stopped.
	Canceled bool
}

// TotalJoules returns the total energy consumed network-wide.
func (r *Result) TotalJoules() float64 { return r.TxJoules + r.MoveJoules + r.ControlJoules }

// Simulation is a single runnable scenario. Create with NewSimulation, add
// flows, then call Run (or RunContext) once.
type Simulation struct {
	world *netsim.World
	flows []FlowID
	jsonl []*trace.JSONLWriter
}

// NewSimulation builds a simulation of the given network under the given
// configuration. The network state is copied; the Network can be reused.
// Options attach observability — WithObserver, WithTimeSeries,
// WithTraceWriter — and cost nothing when absent: the zero-option call is
// bit-identical to a build without the observability layer.
func NewSimulation(cfg Config, net *Network, opts ...Option) (*Simulation, error) {
	if net == nil {
		return nil, errors.New("imobif: nil network")
	}
	o, err := applyOptions(opts)
	if err != nil {
		return nil, err
	}
	ncfg, err := cfg.netsim()
	if err != nil {
		return nil, err
	}
	ncfg.Sink = trace.Multi(o.sinks...)
	if o.sampleInterval > 0 {
		ncfg.SampleInterval = simTime(o.sampleInterval)
	}
	positions := append([]geom.Point(nil), net.positions...)
	energies := append([]float64(nil), net.energies...)
	world, err := netsim.NewWorld(ncfg, positions, energies)
	if err != nil {
		return nil, err
	}
	return &Simulation{world: world, jsonl: o.jsonl}, nil
}

// AddFlow registers a one-to-one flow of lengthBytes bytes. The route is
// planned with greedy geographic routing on the current topology
// (the paper's evaluation routing).
func (s *Simulation) AddFlow(src, dst int, lengthBytes float64) (FlowID, error) {
	id, err := s.world.AddFlow(netsim.FlowSpec{Src: src, Dst: dst, LengthBits: lengthBytes * 8})
	if err != nil {
		return 0, err
	}
	s.flows = append(s.flows, FlowID(id))
	return FlowID(id), nil
}

// AddFlowPath registers a flow along an explicit node path (src..dst
// inclusive); consecutive nodes must be within radio range.
func (s *Simulation) AddFlowPath(path []int, lengthBytes float64) (FlowID, error) {
	if len(path) < 2 {
		return 0, errors.New("imobif: path needs at least two nodes")
	}
	id, err := s.world.AddFlow(netsim.FlowSpec{
		Src: path[0], Dst: path[len(path)-1],
		LengthBits: lengthBytes * 8,
		Path:       append([]int(nil), path...),
	})
	if err != nil {
		return 0, err
	}
	s.flows = append(s.flows, FlowID(id))
	return FlowID(id), nil
}

// FlowPath returns the pinned node path of a flow.
func (s *Simulation) FlowPath(id FlowID) ([]int, error) {
	return s.world.FlowPath(core.FlowID(id))
}

// Run executes the simulation to completion and returns the result.
// Simulations are single-use. Run is RunContext with a background
// context.
func (s *Simulation) Run() (*Result, error) {
	return s.RunContext(context.Background())
}

// RunContext executes the simulation to completion, or until ctx is
// canceled. Cancellation is checked between simulation events, never
// mid-event, so a canceled run still returns a well-formed, deterministic
// Result — the partial state at the moment the run stopped — with
// Canceled set and a nil error. Simulations are single-use.
func (s *Simulation) RunContext(ctx context.Context) (*Result, error) {
	res, err := s.world.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	for _, jw := range s.jsonl {
		if werr := jw.Err(); werr != nil {
			return nil, fmt.Errorf("imobif: trace export: %w", werr)
		}
	}
	out := &Result{
		TxJoules:          res.Energy.Tx,
		MoveJoules:        res.Energy.Move,
		ControlJoules:     res.Energy.Control,
		FirstDeathSeconds: float64(res.FirstDeath),
		DurationSeconds:   float64(res.Duration),
		Channel: ChannelStats{
			Unicasts:   res.Medium.Unicasts,
			Broadcasts: res.Medium.Broadcasts,
			Delivered:  res.Medium.Delivered,
			RangeDrops: res.Medium.RangeDrops,
			DeadDrops:  res.Medium.DeadDrops,
			FaultDrops: res.Medium.FaultDrops,
		},
		Transport: TransportStats{
			Retransmits:  res.Transport.Retransmits,
			Acks:         res.Transport.Acks,
			DupAcks:      res.Transport.DupAcks,
			DupData:      res.Transport.DupData,
			LinkBreaks:   res.Transport.LinkBreaks,
			RouteRepairs: res.Transport.RouteRepairs,
		},
		ChannelLossRate: res.Faults.LossRate(),
		Canceled:        res.Canceled,
	}
	if res.Series != nil {
		out.Series = make([]Sample, 0, len(res.Series.Samples))
		for _, smp := range res.Series.Samples {
			out.Series = append(out.Series, sampleFromInternal(smp))
		}
	}
	for _, n := range res.Initial.Nodes {
		out.Before = append(out.Before, Node{ID: n.ID, X: n.Pos.X, Y: n.Pos.Y, Joules: n.Residual})
	}
	for _, n := range res.Final.Nodes {
		out.After = append(out.After, Node{ID: n.ID, X: n.Pos.X, Y: n.Pos.Y, Joules: n.Residual})
	}
	for _, f := range res.Flows {
		out.Flows = append(out.Flows, FlowResult{
			Completed:       f.Completed,
			DeliveredBytes:  f.DeliveredBits / 8,
			Notifications:   f.Notifications,
			StatusFlips:     f.StatusFlips,
			DurationSeconds: float64(f.Duration),
			LifetimeSeconds: float64(f.Lifetime()),
			PathNodes:       f.PathLen,
			PacketsEmitted:  f.PacketsEmitted,
			PacketsDropped:  f.PacketsDropped,
			DeliveryRatio:   f.DeliveryRatio(),
		})
	}
	return out, nil
}

// PlanGreedyRoute plans the greedy geographic route between two nodes of a
// network, exposed for tooling and examples.
func (n *Network) PlanGreedyRoute(src, dst int) ([]int, error) {
	g, err := topo.NewGraph(n.positions, n.radioRng)
	if err != nil {
		return nil, err
	}
	return (routing.GreedyPlanner{}).PlanRoute(g, src, dst)
}

// simTime converts seconds to the simulator's time type.
func simTime(seconds float64) sim.Time { return sim.Time(seconds) }
