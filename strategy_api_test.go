package imobif

import (
	"testing"
)

// TestStrategiesListsRegistry pins the public discovery surface: every
// named built-in appears in Strategies(), and each builds through
// Config.Validate with default parameters.
func TestStrategiesListsRegistry(t *testing.T) {
	names := Strategies()
	have := make(map[string]bool, len(names))
	for _, n := range names {
		have[n] = true
	}
	for _, s := range []StrategyConfig{
		StrategyMinEnergy, StrategyMaxLifetime, StrategyMaxLifetimeExact,
		StrategyStationary, StrategyMaxLifetimeRouting, StrategyRollingHorizon,
		StrategyClusterRotation,
	} {
		if !have[s.Name] {
			t.Errorf("Strategies() is missing %q: %v", s.Name, names)
		}
		c := DefaultConfig()
		c.Strategy = s
		if err := c.Validate(); err != nil {
			t.Errorf("default config with %q invalid: %v", s.Name, err)
		}
	}
}

// TestStrategyParamsRoundTrip pins the typed params path through the
// public Config: valid params pass validation, bad ones name the knob.
func TestStrategyParamsRoundTrip(t *testing.T) {
	c := DefaultConfig()
	c.Strategy = StrategyConfig{Name: "rolling-horizon",
		Params: map[string]float64{"horizon": 6, "discount": 0.8, "samples": 5}}
	if err := c.Validate(); err != nil {
		t.Fatalf("parameterized strategy invalid: %v", err)
	}
	c.Strategy.Params = map[string]float64{"discount": 2}
	if err := c.Validate(); err == nil {
		t.Fatal("out-of-range discount accepted")
	}
	c.Strategy = StrategyConfig{Name: "stationary", Params: map[string]float64{"x": 1}}
	if err := c.Validate(); err == nil {
		t.Fatal("params on a parameterless strategy accepted")
	}
}
