package imobif

// The public fault-injection surface, consolidated in one place: the
// FaultConfig knobs that parameterize the channel/transport models, and
// the Simulation methods that script node outages.
//
// The failure→recovery lifecycle: ScheduleNodeFailure crashes a node at a
// virtual time — it stops transmitting, receiving, moving, and beaconing,
// with its battery left intact (hardware failure, not depletion), and the
// crash counts as the first "death" for lifetime metrics. Flows routed
// through a crashed relay drop packets (or, with FaultConfig.RetryLimit
// and RouteRepair set, retry and re-plan around it). ScheduleNodeRecovery
// reverses a crash at a later time: the node resumes participating and
// immediately re-broadcasts its HELLO so neighbors relearn it; recovering
// a node that is not down at that moment is a no-op. ScheduleNodeOutage
// composes the two into one down/up window. All scheduling must happen
// before Run.

import (
	"fmt"

	"repro/internal/fault"
)

// FaultConfig parameterizes the fault-injection layer (see internal/fault
// for the underlying models). Attach one via Config.Faults; nil keeps the
// ideal lossless channel.
type FaultConfig struct {
	// LossP is the per-transmission loss probability in [0, 1).
	LossP float64
	// DistanceScaledLoss scales the loss probability with
	// (distance/range)², so links at the radio edge are the lossiest.
	DistanceScaledLoss bool
	// LossBurst >= 1 switches to a Gilbert-Elliott bursty channel with
	// this mean loss-burst length (in transmissions); 0 keeps independent
	// losses.
	LossBurst float64
	// Seed seeds the injector's private deterministic stream.
	Seed int64
	// RetryLimit > 0 enables the hop-by-hop retry/ack transport with that
	// many retransmissions per packet per hop.
	RetryLimit int
	// RetryTimeoutSec is the per-hop ack wait before retransmitting.
	RetryTimeoutSec float64
	// AckBytes sizes the hop-level ack packet (default 8 bytes).
	AckBytes float64
	// RouteRepair re-plans flow paths around dead or unreachable relays.
	RouteRepair bool
}

// fault converts the public fault configuration to the internal one.
func (f *FaultConfig) fault() *fault.Config {
	if f == nil {
		return nil
	}
	return &fault.Config{
		LossP:         f.LossP,
		DistanceScale: f.DistanceScaledLoss,
		MeanBurst:     f.LossBurst,
		Seed:          f.Seed,
		RetryLimit:    f.RetryLimit,
		RetryTimeout:  f.RetryTimeoutSec,
		AckBits:       f.AckBytes * 8,
		RouteRepair:   f.RouteRepair,
	}
}

// ScheduleNodeFailure crashes a node at the given virtual time (seconds):
// it stops transmitting, receiving, moving, and beaconing, with its
// battery left intact. Flows routed through it stall unless the retry
// transport and route repair are enabled. Must be called before Run; see
// the package comment above on the failure→recovery lifecycle.
func (s *Simulation) ScheduleNodeFailure(node int, atSeconds float64) error {
	return s.world.ScheduleNodeFailure(node, simTime(atSeconds))
}

// ScheduleNodeRecovery brings a crashed node back at the given virtual
// time: it resumes receiving, relaying, moving, and beaconing, and
// re-announces itself so neighbors relearn it. Recovering a node that is
// not down at that time is a no-op. Must be called before Run.
func (s *Simulation) ScheduleNodeRecovery(node int, atSeconds float64) error {
	return s.world.ScheduleNodeRecovery(node, simTime(atSeconds))
}

// ScheduleNodeOutage takes a node down for the window [downAt, upAt)
// (virtual seconds): a failure at downAt and a recovery at upAt in one
// call — the common crash-then-heal experiment. upAt must be greater than
// downAt. Must be called before Run.
func (s *Simulation) ScheduleNodeOutage(node int, downAt, upAt float64) error {
	if upAt <= downAt {
		return fmt.Errorf("imobif: outage window [%v, %v) is empty", downAt, upAt)
	}
	if err := s.ScheduleNodeFailure(node, downAt); err != nil {
		return err
	}
	return s.ScheduleNodeRecovery(node, upAt)
}
