package imobif

import "testing"

// TestFaultConfigValidation checks that bad fault parameters are rejected
// at the public layer.
func TestFaultConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		faults *FaultConfig
	}{
		{"loss out of range", &FaultConfig{LossP: 1}},
		{"negative loss", &FaultConfig{LossP: -0.1}},
		{"sub-one burst", &FaultConfig{LossP: 0.1, LossBurst: 0.5}},
		{"retry without timeout", &FaultConfig{RetryLimit: 3}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Faults = tt.faults
			if err := cfg.Validate(); err == nil {
				t.Error("want validation error")
			}
		})
	}
	cfg := DefaultConfig()
	cfg.Faults = &FaultConfig{LossP: 0.1, RetryLimit: 3, RetryTimeoutSec: 0.5}
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid fault config rejected: %v", err)
	}
}

// TestLossyRunThroughPublicAPI drives the whole fault stack end-to-end
// through the public surface: lossy channel, retry transport, delivery
// accounting, and the channel/transport counters on Result.
func TestLossyRunThroughPublicAPI(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 60
	cfg.FieldWidth, cfg.FieldHeight = 800, 800
	cfg.Faults = &FaultConfig{
		LossP: 0.1, Seed: 5,
		RetryLimit: 5, RetryTimeoutSec: 0.2,
	}
	net, err := NewRandomNetwork(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	src, dst, err := net.PickFlowEndpoints(7)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulation(cfg, net)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.AddFlow(src, dst, 256*1024); err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	f := res.Flows[0]
	if f.DeliveryRatio < 0.99 {
		t.Errorf("delivery ratio %v at 10%% loss with retries, want >= 0.99", f.DeliveryRatio)
	}
	if f.PacketsEmitted == 0 {
		t.Error("no packets emitted")
	}
	if res.Transport.Retransmits == 0 {
		t.Error("no retransmissions recorded at p=0.1")
	}
	if res.Channel.FaultDrops == 0 {
		t.Error("no fault drops recorded at p=0.1")
	}
	if res.ChannelLossRate <= 0 {
		t.Errorf("channel loss rate %v, want > 0", res.ChannelLossRate)
	}
}

// TestIdealChannelKeepsCountersZero pins the zero-fault contract at the
// public layer: without Config.Faults every fault/transport counter stays
// zero and delivery is perfect.
func TestIdealChannelKeepsCountersZero(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 40
	cfg.FieldWidth, cfg.FieldHeight = 700, 700
	net, err := NewRandomNetwork(cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	src, dst, err := net.PickFlowEndpoints(3)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulation(cfg, net)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.AddFlow(src, dst, 64*1024); err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Transport != (TransportStats{}) {
		t.Errorf("transport counters %+v on the ideal channel, want zeros", res.Transport)
	}
	if res.Channel.FaultDrops != 0 {
		t.Errorf("fault drops = %d on the ideal channel", res.Channel.FaultDrops)
	}
	if res.ChannelLossRate != 0 {
		t.Errorf("channel loss rate = %v on the ideal channel", res.ChannelLossRate)
	}
	if f := res.Flows[0]; f.DeliveryRatio != 1 || f.PacketsDropped != 0 {
		t.Errorf("ideal channel dropped packets: %+v", f)
	}
}

// TestCrashRecoveryThroughPublicAPI exercises Simulation's failure and
// recovery scheduling.
func TestCrashRecoveryThroughPublicAPI(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = ModeNoMobility
	cfg.Faults = &FaultConfig{RetryLimit: 1, RetryTimeoutSec: 0.25}
	nodes := []Node{
		{ID: 0, X: 0, Y: 0, Joules: 1e6},
		{ID: 1, X: 150, Y: 120, Joules: 1e6},
		{ID: 2, X: 300, Y: 0, Joules: 1e6},
	}
	net, err := NewNetwork(nodes, cfg.Range)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulation(cfg, net)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.AddFlowPath([]int{0, 1, 2}, 15*1024); err != nil {
		t.Fatal(err)
	}
	if err := sim.ScheduleNodeFailure(1, 3); err != nil {
		t.Fatal(err)
	}
	if err := sim.ScheduleNodeRecovery(1, 8); err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	f := res.Flows[0]
	if f.PacketsDropped == 0 {
		t.Error("no packets dropped during the relay outage")
	}
	if f.PacketsDropped >= f.PacketsEmitted {
		t.Error("recovery never resumed delivery")
	}
}
