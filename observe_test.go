package imobif

// Tests of the observability layer's public contracts: callback ordering,
// passivity (an attached observer never changes the run), context
// cancellation, time-series invariants, and JSONL round-trips.

import (
	"bytes"
	"context"
	"math"
	"reflect"
	"testing"

	"repro/internal/sweep"
	"repro/internal/trace"
)

// recordingObserver records every callback's simulated time, in call
// order, plus per-callback counts.
type recordingObserver struct {
	times  []float64
	counts map[string]int
}

func newRecordingObserver() *recordingObserver {
	return &recordingObserver{counts: make(map[string]int)}
}

func (r *recordingObserver) hit(name string, at float64) {
	r.times = append(r.times, at)
	r.counts[name]++
}

func (r *recordingObserver) OnPacketSent(e PacketEvent)      { r.hit("sent", e.AtSeconds) }
func (r *recordingObserver) OnPacketDelivered(e PacketEvent) { r.hit("delivered", e.AtSeconds) }
func (r *recordingObserver) OnNodeMoved(e NodeEvent)         { r.hit("moved", e.AtSeconds) }
func (r *recordingObserver) OnNodeDied(e NodeEvent)          { r.hit("died", e.AtSeconds) }
func (r *recordingObserver) OnNodeRecovered(e NodeEvent)     { r.hit("recovered", e.AtSeconds) }
func (r *recordingObserver) OnNotification(e FlowEvent)      { r.hit("notification", e.AtSeconds) }
func (r *recordingObserver) OnStatusChange(e FlowEvent)      { r.hit("status", e.AtSeconds) }
func (r *recordingObserver) OnLinkBreak(e LinkEvent)         { r.hit("link-break", e.AtSeconds) }
func (r *recordingObserver) OnRouteRepair(e FlowEvent)       { r.hit("repair", e.AtSeconds) }
func (r *recordingObserver) OnFlowDone(e FlowEvent)          { r.hit("done", e.AtSeconds) }

// observedConfig is the small scenario the observer tests share.
func observedConfig() Config {
	cfg := DefaultConfig()
	cfg.Nodes = 30
	cfg.FieldWidth, cfg.FieldHeight = 600, 600
	return cfg
}

// runObserved runs one observed trial of the shared scenario and returns
// the observer and the result.
func runObserved(seed int64, opts ...Option) (*recordingObserver, *Result, error) {
	cfg := observedConfig()
	net, err := NewRandomNetwork(cfg, seed)
	if err != nil {
		return nil, nil, err
	}
	src, dst, err := net.PickFlowEndpoints(seed)
	if err != nil {
		return nil, nil, err
	}
	obs := newRecordingObserver()
	sim, err := NewSimulation(cfg, net, append([]Option{WithObserver(obs)}, opts...)...)
	if err != nil {
		return nil, nil, err
	}
	if _, err := sim.AddFlow(src, dst, 32*1024); err != nil {
		return nil, nil, err
	}
	res, err := sim.Run()
	return obs, res, err
}

// TestObserverOrderingRace runs independently observed trials across a
// concurrent sweep and checks that every trial's callbacks arrived in
// simulated-time order with a live event mix — the per-trial observer
// contract is unaffected by how many sibling simulations run in parallel.
func TestObserverOrderingRace(t *testing.T) {
	r := sweep.Runner{Concurrency: 8}
	_, _, err := sweep.Map(context.Background(), r, 16,
		func(_ context.Context, trial int) (struct{}, error) {
			seed := int64(sweep.DeriveSeed(42, uint64(trial)))
			obs, _, err := runObserved(seed)
			if err != nil {
				return struct{}{}, err
			}
			if len(obs.times) == 0 {
				t.Errorf("trial %d: no callbacks fired", trial)
			}
			for i := 1; i < len(obs.times); i++ {
				if obs.times[i] < obs.times[i-1] {
					t.Errorf("trial %d: callback %d at t=%v after t=%v",
						trial, i, obs.times[i], obs.times[i-1])
					break
				}
			}
			if obs.counts["sent"] == 0 || obs.counts["delivered"] == 0 || obs.counts["done"] != 1 {
				t.Errorf("trial %d: unexpected event mix %v", trial, obs.counts)
			}
			return struct{}{}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
}

// TestObserverIsPassive checks that attaching the full observability
// stack — observer, time series, trace writer — leaves the simulation
// outcome bit-identical to a zero-option run.
func TestObserverIsPassive(t *testing.T) {
	cfg := observedConfig()
	net, err := NewRandomNetwork(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	src, dst, err := net.PickFlowEndpoints(7)
	if err != nil {
		t.Fatal(err)
	}
	run := func(opts ...Option) *Result {
		t.Helper()
		sim, err := NewSimulation(cfg, net, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.AddFlow(src, dst, 64*1024); err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	bare := run()
	var buf bytes.Buffer
	observed := run(WithObserver(newRecordingObserver()), WithTimeSeries(0.5), WithTraceWriter(&buf))
	if observed.Series == nil {
		t.Error("WithTimeSeries produced no Series")
	}
	if buf.Len() == 0 {
		t.Error("WithTraceWriter produced no output")
	}
	observed.Series = nil // the only field observability is allowed to add
	if !reflect.DeepEqual(bare, observed) {
		t.Errorf("observed run diverged from bare run:\nbare:     %+v\nobserved: %+v", bare, observed)
	}
}

// TestRunContextCancelRace cancels a run from inside an observer callback
// and checks the simulation stops at the next event boundary with a
// well-formed partial result.
func TestRunContextCancelRace(t *testing.T) {
	cfg := observedConfig()
	net, err := NewRandomNetwork(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	src, dst, err := net.PickFlowEndpoints(7)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	canceler := &cancelObserver{cancel: cancel, after: 10}
	sim, err := NewSimulation(cfg, net, WithObserver(canceler))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.AddFlow(src, dst, 1024*1024); err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Canceled {
		t.Fatal("run was not marked canceled")
	}
	if res.Flows[0].Completed {
		t.Error("canceled run reports a completed flow")
	}
	if len(res.After) != cfg.Nodes {
		t.Errorf("partial result has %d node states, want %d", len(res.After), cfg.Nodes)
	}
}

// cancelObserver cancels its context after `after` delivered packets.
type cancelObserver struct {
	BaseObserver
	cancel context.CancelFunc
	after  int
	seen   int
}

func (c *cancelObserver) OnPacketDelivered(PacketEvent) {
	c.seen++
	if c.seen == c.after {
		c.cancel()
	}
}

// TestRunContextPrecanceled checks that a run under an already-canceled
// context returns immediately with the canceled flag and the initial
// state as its partial result.
func TestRunContextPrecanceled(t *testing.T) {
	cfg := observedConfig()
	net, err := NewRandomNetwork(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	src, dst, err := net.PickFlowEndpoints(7)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulation(cfg, net)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.AddFlow(src, dst, 64*1024); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := sim.RunContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Canceled {
		t.Fatal("run under a canceled context was not marked canceled")
	}
	if res.TotalJoules() != 0 {
		t.Errorf("precanceled run consumed %v J, want 0", res.TotalJoules())
	}
}

// TestTimeSeriesInvariants checks the sampled series' contracts on a run
// with movement and battery-charged control traffic: strictly increasing
// sample times, non-decreasing cumulative energy by category, and energy
// conservation (mean residual times node count plus cumulative consumption
// equals the initial energy budget at every sample).
func TestTimeSeriesInvariants(t *testing.T) {
	cfg := observedConfig()
	cfg.Mode = ModeCostUnaware // unconditional movement: Move > 0
	cfg.ChargeControl = true   // control drains batteries too, so conservation covers it
	net, err := NewRandomNetwork(cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	src, dst, err := net.PickFlowEndpoints(11)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulation(cfg, net, WithTimeSeries(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.AddFlow(src, dst, 64*1024); err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) < 3 {
		t.Fatalf("got %d samples, want at least 3", len(res.Series))
	}
	var initial float64
	for _, n := range res.Before {
		initial += n.Joules
	}
	last := res.Series[len(res.Series)-1]
	if last.MoveJoules == 0 {
		t.Error("cost-unaware run sampled no movement energy")
	}
	for i, s := range res.Series {
		if i > 0 {
			prev := res.Series[i-1]
			if s.AtSeconds <= prev.AtSeconds {
				t.Fatalf("sample %d: time %v not after %v", i, s.AtSeconds, prev.AtSeconds)
			}
			if s.TxJoules < prev.TxJoules || s.MoveJoules < prev.MoveJoules ||
				s.ControlJoules < prev.ControlJoules || s.RxJoules < prev.RxJoules {
				t.Fatalf("sample %d: cumulative energy decreased: %+v -> %+v", i, prev, s)
			}
		}
		consumed := s.TxJoules + s.MoveJoules + s.ControlJoules + s.RxJoules
		total := s.ResidualMeanJoules*float64(cfg.Nodes) + consumed
		if math.Abs(total-initial) > 1e-6*initial {
			t.Fatalf("sample %d: energy not conserved: residual+consumed = %v, initial = %v", i, total, initial)
		}
	}
}

// TestTraceRoundTripFaulty100Nodes exports the JSONL trace of a 100-node
// faulty run (loss, retries, repair, a scheduled outage) and checks the
// stream round-trips through the pinned schema: parse, re-encode, compare
// byte-for-byte, and agree with the observer on the event count.
func TestTraceRoundTripFaulty100Nodes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = &FaultConfig{
		LossP: 0.05, Seed: 3,
		RetryLimit: 3, RetryTimeoutSec: 0.2,
		RouteRepair: true,
	}
	net, err := NewRandomNetwork(cfg, 13)
	if err != nil {
		t.Fatal(err)
	}
	src, dst, err := net.PickFlowEndpoints(13)
	if err != nil {
		t.Fatal(err)
	}
	obs := newRecordingObserver()
	var buf bytes.Buffer
	sim, err := NewSimulation(cfg, net, WithObserver(obs), WithTraceWriter(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.AddFlow(src, dst, 256*1024); err != nil {
		t.Fatal(err)
	}
	route, err := sim.FlowPath(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(route) > 2 {
		if err := sim.ScheduleNodeOutage(route[1], 5, 15); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}

	events, err := trace.ParseJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(obs.times) {
		t.Errorf("trace has %d events, observer saw %d callbacks", len(events), len(obs.times))
	}
	var reenc bytes.Buffer
	jw := trace.NewJSONLWriter(&reenc)
	for _, e := range events {
		jw.Record(e)
	}
	if err := jw.Err(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), reenc.Bytes()) {
		t.Error("re-encoded trace differs from the original export")
	}
}

// TestMetricsJSONLRoundTrip checks WriteMetricsJSONL / ReadMetricsJSONL
// are inverses on a real run's series.
func TestMetricsJSONLRoundTrip(t *testing.T) {
	_, res, err := runObserved(5, WithTimeSeries(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) == 0 {
		t.Fatal("no samples")
	}
	var buf bytes.Buffer
	if err := WriteMetricsJSONL(&buf, res.Series); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMetricsJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Series, back) {
		t.Errorf("round trip diverged:\nwrote: %+v\nread:  %+v", res.Series, back)
	}
}

// TestOptionValidation checks that bad options fail NewSimulation up
// front.
func TestOptionValidation(t *testing.T) {
	cfg := observedConfig()
	net, err := NewRandomNetwork(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := []struct {
		name string
		opt  Option
	}{
		{"nil observer", WithObserver(nil)},
		{"nil trace writer", WithTraceWriter(nil)},
		{"zero interval", WithTimeSeries(0)},
		{"negative interval", WithTimeSeries(-1)},
		{"nil option", nil},
	}
	for _, tt := range bad {
		if _, err := NewSimulation(cfg, net, tt.opt); err == nil {
			t.Errorf("%s: want error", tt.name)
		}
	}
}

// TestScheduleNodeOutage checks the outage helper is exactly a failure
// plus a recovery, and that it rejects empty windows.
func TestScheduleNodeOutage(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = ModeNoMobility
	cfg.Faults = &FaultConfig{RetryLimit: 1, RetryTimeoutSec: 0.25}
	nodes := []Node{
		{ID: 0, X: 0, Y: 0, Joules: 1e6},
		{ID: 1, X: 150, Y: 120, Joules: 1e6},
		{ID: 2, X: 300, Y: 0, Joules: 1e6},
	}
	net, err := NewNetwork(nodes, cfg.Range)
	if err != nil {
		t.Fatal(err)
	}
	run := func(schedule func(*Simulation) error) *Result {
		t.Helper()
		sim, err := NewSimulation(cfg, net)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.AddFlowPath([]int{0, 1, 2}, 15*1024); err != nil {
			t.Fatal(err)
		}
		if err := schedule(sim); err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	manual := run(func(s *Simulation) error {
		if err := s.ScheduleNodeFailure(1, 3); err != nil {
			return err
		}
		return s.ScheduleNodeRecovery(1, 8)
	})
	outage := run(func(s *Simulation) error { return s.ScheduleNodeOutage(1, 3, 8) })
	if !reflect.DeepEqual(manual, outage) {
		t.Error("ScheduleNodeOutage result differs from manual failure+recovery")
	}
	if manual.Flows[0].PacketsDropped == 0 {
		t.Error("no packets dropped during the outage window")
	}

	sim, err := NewSimulation(cfg, net)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.ScheduleNodeOutage(1, 8, 8); err == nil {
		t.Error("empty outage window accepted")
	}
	if err := sim.ScheduleNodeOutage(99, 3, 8); err == nil {
		t.Error("outage of a nonexistent node accepted")
	}
}
