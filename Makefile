GO ?= go

.PHONY: build test race fuzz bench smoke vet doclint observability ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# doclint fails the build on any exported identifier without a godoc
# comment (see cmd/doclint).
doclint:
	$(GO) run ./cmd/doclint .

# race runs the concurrency-sensitive suites (parallel sweeps, shared
# world state, golden serial-vs-parallel determinism, per-trial observers
# under concurrent sweeps, mid-run cancellation) under the race detector.
race:
	$(GO) test -race . ./internal/... -run 'Race|Determinism'

# fuzz gives each fuzzer a short budget; go test accepts one -fuzz
# target per invocation, hence two runs.
fuzz:
	$(GO) test -fuzz=FuzzScenarioJSON -fuzztime=5s ./internal/scenario/
	$(GO) test -fuzz=FuzzSeedDerive -fuzztime=5s ./internal/sweep/

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# observability pins the observability layer's two contracts: the JSONL
# trace schema golden (any wire-format drift fails here) and the
# pay-for-what-you-use benchmark ladder (a zero-option simulation must
# not regress toward the observed rungs).
observability:
	$(GO) test -run 'TestJSONLSchemaGolden|TestJSONLRoundTrip' ./internal/trace/
	$(GO) test -run xxx -bench BenchmarkObserverOverhead -benchtime 1x .

# smoke drives the CLI end-to-end through the faulty regime — lossy
# bursty channel, node churn, retry transport, route repair — over a
# small Monte-Carlo batch, built with the race detector enabled.
smoke:
	$(GO) run -race ./cmd/imobif-sim -nodes 40 -field 800 -flow-kb 256 \
		-trials 4 -loss 0.15 -burst 3 -retry 5 -retry-timeout 0.2 \
		-repair -fault-seed 7 -seed 1
	$(GO) run -race ./cmd/imobif-sim -nodes 40 -field 800 -flow-kb 512 \
		-crash 2 -retry 3 -retry-timeout 0.25 -repair -fault-seed 11 -seed 1

ci: vet doclint build test race fuzz smoke observability
