GO ?= go

.PHONY: build test race fuzz cover bench smoke serve sweep motion strategies \
	parallel vet doclint observability benchgate benchgate-quick bench-baseline ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# doclint fails the build on any exported identifier without a godoc
# comment (see cmd/doclint).
doclint:
	$(GO) run ./cmd/doclint .

# race runs the concurrency-sensitive suites (parallel sweeps, shared
# world state, golden serial-vs-parallel determinism, per-trial observers
# under concurrent sweeps, mid-run cancellation) under the race detector,
# plus the full service suite — the daemon's queue/pool/cache interlock
# is the most concurrent code in the repo.
race:
	$(GO) test -race . ./internal/... -run 'Race|Determinism'
	$(GO) test -race ./internal/serve/...
	$(GO) test -race ./internal/dsweep/
	$(GO) test -race ./internal/motion/
	$(GO) test -race ./internal/mobility/ ./internal/routing/

# fuzz gives each fuzzer a short budget; go test accepts one -fuzz
# target per invocation, hence one run per target.
fuzz:
	$(GO) test -fuzz=FuzzScenarioJSON -fuzztime=5s ./internal/scenario/
	$(GO) test -fuzz=FuzzScenarioFingerprint -fuzztime=5s ./internal/scenario/
	$(GO) test -fuzz=FuzzSeedDerive -fuzztime=5s ./internal/sweep/
	$(GO) test -fuzz=FuzzSchedulerOps -fuzztime=5s ./internal/sim/
	$(GO) test -fuzz=FuzzLookaheadWindow -fuzztime=5s ./internal/sim/
	$(GO) test -fuzz=FuzzCheckpointManifest -fuzztime=5s ./internal/dsweep/

# cover enforces per-package coverage floors on the packages whose
# correctness burden is a test suite rather than a golden run: the seed
# derivation, the service HTTP surface, and the distributed sweep
# fabric. Floors sit just below current coverage so any substantial
# untested addition fails here. The scheduler and world floors guard the
# parallel-scheduler and struct-of-arrays paths: both are exercised almost
# entirely by tests (the determinism battery), so a coverage drop there
# means an unpinned scheduling path.
COVER_FLOORS = repro/internal/sweep:88 repro/internal/serve:83 repro/internal/dsweep:80 \
	repro/internal/sim:97 repro/internal/netsim:82

cover:
	@for spec in $(COVER_FLOORS); do \
		pkg=$${spec%:*}; floor=$${spec#*:}; \
		pct=$$($(GO) test -cover $$pkg | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "cover: no coverage output for $$pkg"; exit 1; fi; \
		if [ "$$(echo "$$pct $$floor" | awk '{print ($$1 >= $$2)}')" != 1 ]; then \
			echo "cover: $$pkg coverage $$pct% below floor $$floor%"; exit 1; fi; \
		echo "cover: $$pkg $$pct% (floor $$floor%)"; \
	done

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# The benchmarks gated against bench_baseline.txt. Three samples absorb
# scheduler jitter; benchgate compares best-vs-best per metric. Only the
# disabled MotionOverhead rungs are gated — they pin the
# zero-cost-when-off contract; the active rungs run to the horizon and
# are too slow (and too scenario-dependent) for a ratchet.
GATED_BENCH = BenchmarkSimulationRun$$|BenchmarkSchedulerSteadyState$$|BenchmarkSweep/|BenchmarkServeSubmit$$|BenchmarkMotionOverhead/(off|stationary)$$|BenchmarkStrategyOverhead/|BenchmarkWorld100k/n5k
GATE_FLAGS  = -run '^$$' -benchmem -count=3

# GATE_BENCH_RUN emits the full gated corpus: the multi-count gated set
# plus a single sample of the headline 100k-node rung (serial and
# 8-shard), which is too slow for count=3 but must stay pinned in the
# baseline — benchgate fails on baseline entries missing from a run, so
# every gate invocation reruns it once.
define GATE_BENCH_RUN
( $(GO) test $(GATE_FLAGS) -bench '$(GATED_BENCH)' -benchtime $(1) . ./internal/sim/ ./internal/serve/ ./internal/netsim/ \
	&& $(GO) test -run '^$$' -benchmem -count=1 -bench 'BenchmarkWorld100k/n100k' -benchtime 1x ./internal/netsim/ )
endef

# benchgate is the performance ratchet: rerun the gated benchmarks and
# fail if any metric is >25% worse than the committed baseline (generous
# enough for shared-runner noise, far tighter than the 2x+ wins the
# baseline records).
benchgate:
	$(call GATE_BENCH_RUN,10x) \
		| $(GO) run ./cmd/benchgate -baseline bench_baseline.txt -threshold 0.25

# benchgate-quick is the short-iteration gate wired into ci: same
# benchmarks and baseline at minimal iteration counts, with a loose
# threshold that still catches order-of-magnitude regressions (a lost
# zero-alloc property or an accidental O(n^2)).
benchgate-quick:
	$(call GATE_BENCH_RUN,3x) \
		| $(GO) run ./cmd/benchgate -baseline bench_baseline.txt -threshold 0.6

# bench-baseline refreshes the committed baseline after an intentional
# performance change. Review the diff before committing.
bench-baseline:
	$(call GATE_BENCH_RUN,10x) \
		| tee bench_baseline.txt

# observability pins the observability layer's two contracts: the JSONL
# trace schema golden (any wire-format drift fails here) and the
# pay-for-what-you-use benchmark ladder (a zero-option simulation must
# not regress toward the observed rungs).
observability:
	$(GO) test -run 'TestJSONLSchemaGolden|TestJSONLRoundTrip' ./internal/trace/
	$(GO) test -run xxx -bench BenchmarkObserverOverhead -benchtime 1x .

# smoke drives the CLI end-to-end through the faulty regime — lossy
# bursty channel, node churn, retry transport, route repair — over a
# small Monte-Carlo batch, built with the race detector enabled.
smoke:
	$(GO) run -race ./cmd/imobif-sim -nodes 40 -field 800 -flow-kb 256 \
		-trials 4 -loss 0.15 -burst 3 -retry 5 -retry-timeout 0.2 \
		-repair -fault-seed 7 -seed 1
	$(GO) run -race ./cmd/imobif-sim -nodes 40 -field 800 -flow-kb 512 \
		-crash 2 -retry 3 -retry-timeout 0.25 -repair -fault-seed 11 -seed 1

# serve is the daemon's end-to-end smoke: start imobif-served on a
# loopback port, submit a scenario through the real HTTP stack, poll to
# completion, and assert every flow delivered.
serve:
	$(GO) run ./cmd/imobif-served -smoke examples/scenarios/chain.json

# sweep drives the distributed sweep fabric end-to-end: checkpoint a
# multi-trial document on a local pool with -verify asserting
# byte-identity against the serial reference, then resume the completed
# checkpoint (zero trials re-run) and verify again.
SWEEP_CKPT = /tmp/imobif-sweep-ci.ckpt

sweep:
	rm -f $(SWEEP_CKPT)
	$(GO) run -race ./cmd/imobif-sweep -scenario examples/scenarios/sweep.json \
		-workers local:2 -checkpoint $(SWEEP_CKPT) -verify
	$(GO) run ./cmd/imobif-sweep -scenario examples/scenarios/sweep.json \
		-workers local:2 -checkpoint $(SWEEP_CKPT) -resume -verify
	rm -f $(SWEEP_CKPT)

# strategies smokes the plug-in registry end-to-end: list the registered
# set, reject an unknown name (naming the set in the error), and drive
# each competitor baseline through a small race-built CLI run — the
# rolling-horizon mover, the LEACH-style rotation, and the no-movement
# max-lifetime-routing baseline whose planner must take effect.
strategies:
	$(GO) run ./cmd/imobif-sim -strategy list
	! $(GO) run ./cmd/imobif-sim -nodes 10 -flow-kb 1 -strategy warp-drive 2>/dev/null
	$(GO) run -race ./cmd/imobif-sim -nodes 30 -field 700 -flow-kb 64 \
		-strategy rolling-horizon -mode cost-unaware -seed 1
	$(GO) run -race ./cmd/imobif-sim -nodes 30 -field 700 -flow-kb 64 \
		-strategy cluster-rotation -mode cost-unaware -seed 1
	$(GO) run -race ./cmd/imobif-sim -nodes 30 -field 700 -flow-kb 64 \
		-strategy max-lifetime-routing -mode no-mobility -seed 1

# motion pins the ambient-mobility layer's contracts: the golden
# stationary fingerprints (a disabled layer is bit-identical to the
# pre-motion seed), the grid-vs-brute differential under active motion,
# and a race-built CLI run with every model knob exercised.
motion:
	$(GO) test -run 'TestGoldenStationaryMotion|TestGridBruteEquivalenceUnderMotion' ./internal/netsim/
	$(GO) run -race ./cmd/imobif-sim -nodes 40 -field 800 -flow-kb 64 \
		-trials 2 -motion random-waypoint -motion-speed-lo 1 -motion-speed-hi 3 \
		-motion-pause 10 -motion-seed 5 -seed 1
	$(GO) run -race ./cmd/imobif-sim -nodes 40 -field 800 -flow-kb 64 \
		-motion rpgm -motion-groups 4 -motion-radius 60 -motion-seed 5 -seed 1

# parallel runs the cross-scheduler determinism battery: every golden
# scenario (zero-fault, faulty, each ambient-motion model, each registered
# strategy) serial versus the conservative-lookahead scheduler at shards
# {1,2,8} must produce byte-identical results, the stale-neighbor budget
# contracts must hold, and the parallel paths must be race-clean with
# real worker counts.
parallel:
	$(GO) test -run 'TestDeterminism|TestScaleWorldSmoke' ./internal/netsim/
	$(GO) test -race -run 'TestDeterminismRaceParallelShards' ./internal/netsim/

ci: vet doclint build test race fuzz cover smoke serve sweep motion strategies parallel observability benchgate-quick
