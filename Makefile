GO ?= go

.PHONY: build test race fuzz bench vet doclint ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# doclint fails the build on any exported identifier without a godoc
# comment (see cmd/doclint).
doclint:
	$(GO) run ./cmd/doclint .

# race runs the concurrency-sensitive suites (parallel sweeps, shared
# world state, golden serial-vs-parallel determinism) under the race
# detector.
race:
	$(GO) test -race ./internal/... -run 'Race|Determinism'

# fuzz gives each fuzzer a short budget; go test accepts one -fuzz
# target per invocation, hence two runs.
fuzz:
	$(GO) test -fuzz=FuzzScenarioJSON -fuzztime=5s ./internal/scenario/
	$(GO) test -fuzz=FuzzSeedDerive -fuzztime=5s ./internal/sweep/

bench:
	$(GO) test -bench=. -benchtime=1x ./...

ci: vet doclint build test race fuzz
