// Package imobif is a Go implementation of iMobif, the informed-mobility
// framework for energy optimization in wireless ad hoc networks
// (Tang & McKinley, ICDCS 2005).
//
// In networks whose nodes can physically move (robot swarms, vehicular
// relays, mobile sensors), relocating relay nodes can dramatically cut
// radio transmission energy — but locomotion itself costs energy. iMobif
// weighs the two online and in a fully distributed fashion: data-packet
// headers accumulate the expected performance of the current mobility
// strategy both with and without movement, the flow destination compares
// the aggregates, and it notifies the source to enable or disable mobility
// for the whole path.
//
// The package provides:
//
//   - a deterministic discrete-event simulator of a wireless ad hoc
//     network (unit-disk radio with power control, first-order energy
//     model P(d) = a + b·dᵅ, HELLO neighbor discovery, greedy geographic
//     routing);
//   - the iMobif framework itself (flow tables, header aggregation,
//     enable/disable feedback);
//   - two mobility strategies from the paper: minimize total transmission
//     energy (relays converge to evenly spaced positions on the
//     source–destination line) and maximize system lifetime (relay
//     spacing proportional to residual energy, Theorem 1);
//   - the paper's two baselines (no mobility, cost-unaware mobility) and
//     every experiment from its evaluation section (see EXPERIMENTS.md).
//
// # Quick start
//
//	cfg := imobif.DefaultConfig()
//	cfg.Strategy = imobif.StrategyMinEnergy
//	cfg.Mode = imobif.ModeInformed
//
//	net, err := imobif.NewRandomNetwork(cfg, 42)
//	if err != nil { ... }
//	sim, err := imobif.NewSimulation(cfg, net)
//	if err != nil { ... }
//	src, dst, err := net.PickFlowEndpoints(42)
//	if err != nil { ... }
//	if _, err := sim.AddFlow(src, dst, 1<<20); err != nil { ... }
//	res, err := sim.Run()
//	if err != nil { ... }
//	fmt.Printf("tx %.1f J, movement %.1f J\n", res.TxJoules, res.MoveJoules)
//
// The package-level Example is a runnable version of the above; the
// examples/ directory contains larger scenarios, and the
// cmd/imobif-figures binary regenerates every table and figure of the
// paper's evaluation.
//
// # Observability
//
// Runs are silent by default and observable on demand through options on
// NewSimulation: WithObserver attaches typed per-event callbacks,
// WithTimeSeries samples energy and delivery metrics over simulated time
// into Result.Series, and WithTraceWriter streams every event as JSON
// Lines. RunContext makes a run cancelable between events, returning a
// deterministic partial Result with the Canceled flag set. A zero-option
// simulation skips event dispatch entirely and is bit-identical to one
// built before the observability layer existed.
//
// # Determinism
//
// One seed reproduces any run byte-for-byte: all randomness flows from
// seeded sources, the event queue breaks timestamp ties FIFO, and
// Monte-Carlo sweeps derive per-trial seeds so results are identical at
// any worker count.
//
// # Scaling
//
// Neighbor queries run against a uniform-grid spatial index
// (radio-range-sized cells, O(k) per query), so node counts far beyond
// the paper's 100 stay tractable; Config.NeighborIndex selects the
// brute-force reference scan instead, which produces bit-identical
// results. See ARCHITECTURE.md for the package map and dataflow, and
// EXPERIMENTS.md for measured figures and scaling numbers.
package imobif
