package imobif

import (
	"math"
	"testing"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"bad strategy", func(c *Config) { c.Strategy = Strategy("warp-drive") }},
		{"bad mode", func(c *Config) { c.Mode = "yolo" }},
		{"zero range", func(c *Config) { c.Range = 0 }},
		{"negative k", func(c *Config) { c.MobilityCost = -1 }},
		{"zero packet", func(c *Config) { c.PacketBytes = 0 }},
		{"zero rate", func(c *Config) { c.FlowRateBytesPerSec = 0 }},
		{"zero estimate", func(c *Config) { c.EstimateScale = 0 }},
		{"bad tx", func(c *Config) { c.TxB = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("want validation error")
			}
		})
	}
}

func TestNewRandomNetworkDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	a, err := NewRandomNetwork(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRandomNetwork(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != cfg.Nodes {
		t.Fatalf("Len = %d, want %d", a.Len(), cfg.Nodes)
	}
	na, nb := a.Nodes(), b.Nodes()
	for i := range na {
		if na[i] != nb[i] {
			t.Fatal("same seed produced different networks")
		}
	}
}

func TestNewNetworkValidation(t *testing.T) {
	if _, err := NewNetwork([]Node{{}}, 100); err == nil {
		t.Error("single node should error")
	}
	if _, err := NewNetwork([]Node{{}, {X: 1}}, 0); err == nil {
		t.Error("zero range should error")
	}
	if _, err := NewNetwork([]Node{{Joules: -1}, {X: 1}}, 100); err == nil {
		t.Error("negative energy should error")
	}
}

func lineNetwork(t *testing.T, n int, gap float64, joules float64) *Network {
	t.Helper()
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{ID: i, X: float64(i) * gap, Y: 0, Joules: joules}
	}
	net, err := NewNetwork(nodes, 200)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestSimulationEndToEnd(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = ModeNoMobility
	net := lineNetwork(t, 4, 100, 1000)
	sim, err := NewSimulation(cfg, net)
	if err != nil {
		t.Fatal(err)
	}
	id, err := sim.AddFlow(0, 3, 100*1024) // 100 KB
	if err != nil {
		t.Fatal(err)
	}
	path, err := sim.FlowPath(id)
	if err != nil {
		t.Fatal(err)
	}
	if path[0] != 0 || path[len(path)-1] != 3 {
		t.Errorf("path = %v", path)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flows) != 1 {
		t.Fatalf("flows = %d", len(res.Flows))
	}
	f := res.Flows[0]
	if !f.Completed {
		t.Errorf("flow incomplete: %+v", f)
	}
	if math.Abs(f.DeliveredBytes-100*1024) > 1e-6 {
		t.Errorf("delivered %v bytes", f.DeliveredBytes)
	}
	if res.TxJoules <= 0 {
		t.Error("no transmission energy recorded")
	}
	if res.MoveJoules != 0 {
		t.Error("no-mobility run recorded movement energy")
	}
	if res.FirstDeathSeconds >= 0 {
		t.Error("unexpected node death")
	}
	if len(res.Before) != 4 || len(res.After) != 4 {
		t.Error("snapshots missing")
	}
}

func TestSimulationInformedBeatsBaselineOnLongFlow(t *testing.T) {
	// The headline result through the public API: a long flow on a bent
	// relay chain consumes less total energy under informed mobility.
	nodes := []Node{
		{ID: 0, X: 0, Y: 0, Joules: 1e6},
		{ID: 1, X: 100, Y: 42, Joules: 1e6},
		{ID: 2, X: 200, Y: 60, Joules: 1e6},
		{ID: 3, X: 300, Y: 42, Joules: 1e6},
		{ID: 4, X: 400, Y: 0, Joules: 1e6},
	}
	run := func(mode Mode) *Result {
		cfg := DefaultConfig()
		cfg.Mode = mode
		net, err := NewNetwork(nodes, 200)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := NewSimulation(cfg, net)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.AddFlow(0, 4, 100<<20); err != nil { // 100 MB
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(ModeNoMobility)
	informed := run(ModeInformed)
	if informed.TotalJoules() >= base.TotalJoules() {
		t.Errorf("informed %.1f J should beat baseline %.1f J",
			informed.TotalJoules(), base.TotalJoules())
	}
	if informed.MoveJoules == 0 {
		t.Error("informed run should have moved relays")
	}
}

func TestAddFlowPath(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = ModeCostUnaware
	net := lineNetwork(t, 5, 100, 1e6)
	sim, err := NewSimulation(cfg, net)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.AddFlowPath([]int{0, 1, 2, 3, 4}, 1024); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.AddFlowPath([]int{0}, 1024); err == nil {
		t.Error("single-node path should error")
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Flows[0].Completed {
		t.Error("flow incomplete")
	}
	if res.Flows[0].PathNodes != 5 {
		t.Errorf("path nodes = %d, want 5", res.Flows[0].PathNodes)
	}
}

func TestPickFlowEndpoints(t *testing.T) {
	cfg := DefaultConfig()
	net, err := NewRandomNetwork(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	src, dst, err := net.PickFlowEndpoints(3)
	if err != nil {
		t.Fatal(err)
	}
	if src == dst {
		t.Error("src == dst")
	}
	route, err := net.PlanGreedyRoute(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(route) < 3 {
		t.Errorf("route = %v, want at least one relay", route)
	}
}

func TestPickFlowEndpointsSparseFails(t *testing.T) {
	// Two isolated clusters: no routable pair with a relay.
	nodes := []Node{
		{ID: 0, X: 0, Y: 0, Joules: 1},
		{ID: 1, X: 5000, Y: 5000, Joules: 1},
	}
	net, err := NewNetwork(nodes, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := net.PickFlowEndpoints(1); err == nil {
		t.Error("want error on unroutable network")
	}
}

func TestLifetimeThroughPublicAPI(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Strategy = StrategyMaxLifetime
	cfg.Mode = ModeInformed
	cfg.StopOnFirstDeath = true
	nodes := []Node{
		{ID: 0, X: 0, Y: 0, Joules: 1e4},
		{ID: 1, X: 50, Y: 0, Joules: 100},
		{ID: 2, X: 250, Y: 0, Joules: 1e4},
	}
	net, err := NewNetwork(nodes, 200)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulation(cfg, net)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.AddFlowPath([]int{0, 1, 2}, 100<<20); err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstDeathSeconds < 0 {
		t.Fatal("expected the relay to die")
	}
	if res.Flows[0].LifetimeSeconds != res.FirstDeathSeconds {
		t.Error("flow lifetime should equal first death time")
	}
	// The relay should have relocated downstream before dying.
	if res.After[1].X <= nodes[1].X {
		t.Errorf("relay did not move downstream: x = %v", res.After[1].X)
	}
}

func TestNetworkReuse(t *testing.T) {
	// The same Network can seed multiple simulations; runs must not
	// contaminate each other.
	cfg := DefaultConfig()
	cfg.Mode = ModeCostUnaware
	net := lineNetwork(t, 4, 100, 1e6)
	for i := 0; i < 2; i++ {
		sim, err := NewSimulation(cfg, net)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.AddFlow(0, 3, 1024*100); err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range net.Nodes() {
		if n.Joules != 1e6 {
			t.Errorf("network mutated: node %d has %v J", n.ID, n.Joules)
		}
	}
}

func TestSimulationNilNetwork(t *testing.T) {
	if _, err := NewSimulation(DefaultConfig(), nil); err == nil {
		t.Error("nil network should error")
	}
}
